(** Tunable parameters of the Bosphorus workflow (Section IV lists the
    paper's settings; defaults here are scaled to laptop-size instances,
    see DESIGN.md). *)

(** Whether SAT stages hand the encoding's XOR constraints to the
    solver's in-search parity engine ({!Sat.Parity}: watched-row
    propagation plus level-0 Gauss-Jordan assimilation). *)
type gauss_mode =
  | Gauss_auto  (** on when the round carries at least [gauss_threshold] XORs *)
  | Gauss_on
  | Gauss_off

type t = {
  xl_sample_bits : int;
      (** M: subsample so the linearised system has ~2^M cells (paper: 30) *)
  xl_expand_bits : int;
      (** delta-M: expand until ~2^(M+dM) cells (paper: 4) *)
  xl_degree : int;  (** D: multiplier-monomial degree bound (paper: 1) *)
  karnaugh_vars : int;
      (** K: Karnaugh-map conversion for polynomials with <= K variables
          (paper: 8) *)
  xor_cut_length : int;  (** L: max terms per cut XOR piece (paper: 5) *)
  clause_cut_positive : int;
      (** L': max positive literals per clause in CNF-to-ANF (paper: 5) *)
  sat_budget_start : int;  (** C: initial SAT conflict budget (paper: 10^4) *)
  sat_budget_max : int;  (** budget ceiling (paper: 10^5) *)
  sat_budget_step : int;  (** budget increment when SAT learns nothing new *)
  max_iterations : int;  (** safety bound on the learning loop *)
  stop_on_solution : bool;
      (** exit the loop when the SAT solver finds a satisfying assignment *)
  facts_from_monomial_aux : bool;
      (** extension beyond the paper: also harvest unit facts on monomial
          auxiliary variables (sound; off by default for fidelity) *)
  stage_time_s : float;
      (** wall-clock budget for one XL or ElimLin pass; a pass past its
          budget stops gracefully and returns the facts found so far.  The
          paper bounds Bosphorus's total runtime the same way (1,000 of the
          5,000 s timeout). *)
  sat_probe_vars : int;
      (** extension beyond the paper: failed-literal probing in the SAT
          stage — assume each of the first N ANF variables both ways and
          harvest forced values and equivalences from unit propagation
          (0 disables; off by default for fidelity) *)
  seed : int;  (** RNG seed for XL/ElimLin subsampling *)
  audit_trail : bool;
      (** record an {!Audit_trail.t} in the outcome — the input system plus,
          per SAT stage, the emitted CNF and the solver's DRUP-style proof
          log — so the audit layer ([lib/audit]) can independently certify
          every learnt fact after the run.  Off by default: proof logging
          retains every learnt clause. *)
  jobs : int;
      (** domain-pool width for the parallel kernels: GF(2) elimination
          panel updates, XL expansion and linearizer column hashing all
          fan out over [jobs] domains of the shared {!Runtime.Pool}.
          1 (the default) runs everything sequentially on the calling
          domain.  Results are identical for every value — see DESIGN.md,
          "Parallel runtime". *)
  incremental_sat : bool;
      (** keep one SAT solver and one ANF-to-CNF conversion state alive
          across loop iterations: each round encodes only the
          not-yet-seen polynomials and feeds the delta clauses to the
          running solver, which keeps its learnt clauses, VSIDS
          activities and saved phases.  Semantics-preserving (the final
          fact set matches the from-scratch driver); on by default.
          See DESIGN.md, "Clause arena & incremental SAT rounds". *)
  timeout_s : float option;
      (** global wall-clock budget for one driver run ([--timeout]).  On
          expiry the run degrades gracefully: in-flight stages stop at
          their next cooperative poll, the outcome carries every fact
          learnt so far and reports [Degraded] with a structured
          {!Harness.Budget.report}.  The driver reserves a slice of this
          budget (25%, capped at 1s) as a finalization grace period so
          the whole call — including folding in the last partial fact
          batch and emitting the processed CNF — respects the timeout,
          not just the learning loop.  [None] (default): unlimited. *)
  max_memory_monomials : int option;
      (** global memory ceiling expressed as a monomial/clause count
          ([--max-memory-monomials]) — the gauge tracks the master
          system's monomial total and each XL expansion's distinct-column
          count.  [None] (default): unlimited. *)
  max_total_conflicts : int option;
      (** cumulative CDCL conflict ceiling across all SAT rounds
          ([--max-total-conflicts]), accounted from solver-reported
          conflict counts (not requested budgets).  Per-round budgets are
          still [sat_budget_*], clipped to what remains.  [None]
          (default): unlimited. *)
  portfolio : int;
      (** SAT-stage portfolio width ([--portfolio]): race K diversified
          solver configurations on dedicated domains with lock-free
          clause sharing and first-finisher cancellation (see
          {!Sat.Portfolio}).  The winner's solver carries the round's
          facts; with [incremental_sat] it becomes the surviving session
          solver.  1 (the default) keeps the single-solver semantics
          bit-for-bit.  Ignored when [audit_trail] is on — per-worker
          DRUP logs are not exchange-aware, so audited runs stay
          single-solver. *)
  gauss : gauss_mode;
      (** in-search parity reasoning over the encoding's XOR constraints
          ([--gauss]): the ANF-to-CNF conversion (and, for CNF inputs,
          {!Sat.Xor_module.recover}) reports the XOR rows underlying the
          emitted clauses, and SAT stages feed them to {!Sat.Solver.add_xor}
          so the {!Sat.Parity} engine propagates them during search.
          [Gauss_auto] (the default) engages when a round carries at least
          [gauss_threshold] rows.  Incompatible with [audit_trail]
          ([Gauss_on] + audit is rejected; auto simply stays off) —
          parity-derived reasons are not RUP steps. *)
  gauss_threshold : int;
      (** minimum XOR rows in a round before [Gauss_auto] engages
          (default 8) *)
}

val default : t

(** The parameters of the paper's Section IV experiments, verbatim. *)
val paper : t
