(* Tests for the solver's utility structures: growable vectors and the
   activity-ordered variable heap. *)

module V = Sat.Vec
module H = Sat.Var_heap

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vec_push_get () =
  let v = V.create ~dummy:(-1) in
  check_int "empty" 0 (V.size v);
  for i = 0 to 99 do
    V.push v i
  done;
  check_int "size" 100 (V.size v);
  check_int "get 0" 0 (V.get v 0);
  check_int "get 99" 99 (V.get v 99);
  V.set v 5 500;
  check_int "set" 500 (V.get v 5)

let test_vec_bounds () =
  let v = V.of_list ~dummy:0 [ 1; 2; 3 ] in
  Alcotest.check_raises "get oob"
    (Invalid_argument "Vec: index 3 out of range (size 3)") (fun () ->
      ignore (V.get v 3));
  Alcotest.check_raises "set negative"
    (Invalid_argument "Vec: index -1 out of range (size 3)") (fun () ->
      V.set v (-1) 0);
  Alcotest.check_raises "bad shrink" (Invalid_argument "Vec.shrink") (fun () -> V.shrink v 4)

let test_vec_pop_last () =
  let v = V.of_list ~dummy:0 [ 1; 2; 3 ] in
  check_int "last" 3 (V.last v);
  check_int "pop" 3 (V.pop v);
  check_int "size after pop" 2 (V.size v);
  V.clear v;
  check_int "cleared" 0 (V.size v);
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      ignore (V.pop v))

let test_vec_filter_in_place () =
  let v = V.of_list ~dummy:0 [ 1; 2; 3; 4; 5; 6 ] in
  V.filter_in_place (fun x -> x mod 2 = 0) v;
  Alcotest.(check (list int)) "evens kept in order" [ 2; 4; 6 ] (V.to_list v)

let test_vec_sort () =
  let v = V.of_list ~dummy:0 [ 5; 1; 4; 2; 3 ] in
  V.sort_in_place Int.compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (V.to_list v)

let test_vec_iter () =
  let v = V.of_list ~dummy:0 [ 10; 20; 30 ] in
  let sum = ref 0 in
  V.iter (fun x -> sum := !sum + x) v;
  check_int "sum" 60 !sum

(* ------------------------------------------------------------------ *)
(* Var_heap                                                            *)
(* ------------------------------------------------------------------ *)

let farr_init n f =
  let b = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (Int.max 1 n) in
  for i = 0 to n - 1 do
    b.{i} <- f i
  done;
  b

let farr_make n x = farr_init n (fun _ -> x)

let test_heap_max_order () =
  let n = 10 in
  let activity = farr_init n float_of_int in
  let h = H.create n activity in
  for v = 0 to n - 1 do
    H.insert h v
  done;
  (* highest activity first *)
  let order = List.init n (fun _ -> H.remove_max h) in
  Alcotest.(check (list int)) "descending activity" [ 9; 8; 7; 6; 5; 4; 3; 2; 1; 0 ] order;
  check "empty" true (H.is_empty h)

let test_heap_ties_by_index () =
  let activity = farr_make 5 1.0 in
  let h = H.create 5 activity in
  List.iter (H.insert h) [ 3; 1; 4; 0; 2 ];
  let order = List.init 5 (fun _ -> H.remove_max h) in
  Alcotest.(check (list int)) "ties broken by lower index" [ 0; 1; 2; 3; 4 ] order

let test_heap_update () =
  let activity = farr_init 4 float_of_int in
  let h = H.create 4 activity in
  for v = 0 to 3 do
    H.insert h v
  done;
  (* boost variable 0 past everyone *)
  activity.{0} <- 100.0;
  H.update h 0;
  check_int "boosted to top" 0 (H.remove_max h)

let test_heap_insert_idempotent () =
  let activity = farr_make 3 0.0 in
  let h = H.create 3 activity in
  H.insert h 1;
  H.insert h 1;
  check_int "single copy" 1 (H.remove_max h);
  check "now empty" true (H.is_empty h)

let test_heap_mem_and_rebuild () =
  let activity = farr_make 6 0.0 in
  let h = H.create 6 activity in
  H.insert h 2;
  check "mem" true (H.mem h 2);
  check "not mem" false (H.mem h 3);
  H.rebuild h [ 4; 5 ];
  check "rebuilt drops old" false (H.mem h 2);
  check "rebuilt has new" true (H.mem h 4 && H.mem h 5)

let test_heap_grow () =
  let activity = farr_make 2 0.0 in
  let h = H.create 2 activity in
  H.insert h 0;
  let activity' = farr_make 8 0.0 in
  activity'.{7} <- 9.0;
  let h = H.grow h 8 activity' in
  H.insert h 7;
  check_int "new var wins" 7 (H.remove_max h);
  check_int "old var kept" 0 (H.remove_max h)

let test_heap_decrease_key () =
  let activity = farr_init 5 (fun v -> float_of_int (10 * (v + 1))) in
  let h = H.create 5 activity in
  for v = 0 to 4 do
    H.insert h v
  done;
  (* demote the current maximum below everyone *)
  activity.{4} <- 1.0;
  H.update h 4;
  let order = List.init 5 (fun _ -> H.remove_max h) in
  Alcotest.(check (list int)) "demoted var drains last" [ 3; 2; 1; 0; 4 ] order

let test_heap_rescale () =
  (* VSIDS rescaling multiplies every activity by the same constant; the
     heap order must be unaffected, and updates issued afterwards must
     still land correctly at the tiny scale. *)
  let n = 8 in
  let activity = farr_init n (fun v -> float_of_int (v * v + 1)) in
  let h = H.create n activity in
  for v = 0 to n - 1 do
    H.insert h v
  done;
  for v = 0 to n - 1 do
    activity.{v} <- activity.{v} *. 1e-100;
    H.update h v
  done;
  (* post-rescale bump, as the solver does after var_decay overflow *)
  activity.{2} <- activity.{2} +. 1e-98;
  H.update h 2;
  let first = H.remove_max h in
  check_int "bumped var wins after rescale" 2 first;
  let rest = List.init (n - 1) (fun _ -> H.remove_max h) in
  Alcotest.(check (list int)) "remaining order preserved" [ 7; 6; 5; 4; 3; 1; 0 ] rest

(* Model-based randomized operations: interleave insert / update /
   remove_max against a naive reference set and check every answer. *)
let prop_heap_random_ops =
  let gen_ops =
    QCheck.Gen.(
      list_size (int_range 20 120)
        (oneof
           [
             map (fun v -> `Insert v) (int_bound 15);
             map2 (fun v a -> `Update (v, a)) (int_bound 15) (float_range 0.0 100.0);
             return `Remove_max;
           ]))
  in
  let print_ops ops =
    String.concat ";"
      (List.map
         (function
           | `Insert v -> Printf.sprintf "I%d" v
           | `Update (v, a) -> Printf.sprintf "U%d=%.2f" v a
           | `Remove_max -> "R")
         ops)
  in
  QCheck.Test.make ~name:"heap matches reference model under random ops" ~count:200
    (QCheck.make ~print:print_ops gen_ops)
    (fun ops ->
      let n = 16 in
      let activity = farr_make n 0.0 in
      let h = H.create n activity in
      let model = Hashtbl.create 16 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | `Insert v ->
              H.insert h v;
              Hashtbl.replace model v ()
          | `Update (v, a) ->
              activity.{v} <- a;
              if H.mem h v then H.update h v
          | `Remove_max ->
              if Hashtbl.length model = 0 then
                ok := !ok && H.is_empty h
              else begin
                let best =
                  Hashtbl.fold
                    (fun v () acc ->
                      match acc with
                      | None -> Some v
                      | Some b ->
                          if
                            activity.{v} > activity.{b}
                            || (activity.{v} = activity.{b} && v < b)
                          then Some v
                          else acc)
                    model None
                in
                let got = H.remove_max h in
                Hashtbl.remove model got;
                ok := !ok && Some got = best
              end)
        ops;
      (* membership must agree at the end too *)
      for v = 0 to n - 1 do
        ok := !ok && H.mem h v = Hashtbl.mem model v
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Ivec (flat watcher/clause-list vector backing the arena solver)     *)
(* ------------------------------------------------------------------ *)

module IV = Sat.Ivec

let test_ivec_push_get_set () =
  let v = IV.create () in
  check_int "empty" 0 (IV.size v);
  for i = 0 to 99 do
    IV.push v (2 * i)
  done;
  check_int "size" 100 (IV.size v);
  check_int "get 0" 0 (IV.get v 0);
  check_int "get 99" 198 (IV.get v 99);
  IV.set v 5 (-7);
  check_int "set" (-7) (IV.get v 5)

let test_ivec_push2_pairs () =
  let v = IV.create ~cap:1 () in
  (* watcher-shaped payload: (cref, blocker) pairs through growth *)
  for i = 0 to 40 do
    IV.push2 v i (1000 + i)
  done;
  check_int "size" 82 (IV.size v);
  let ok = ref true in
  for i = 0 to 40 do
    ok := !ok && IV.get v (2 * i) = i && IV.get v ((2 * i) + 1) = 1000 + i
  done;
  check "pairs intact" true !ok

let test_ivec_shrink_clear_filter () =
  let v = IV.of_list [ 5; 1; 4; 2; 3 ] in
  IV.shrink v 4;
  Alcotest.(check (list int)) "shrink keeps prefix" [ 5; 1; 4; 2 ] (IV.to_list v);
  IV.filter_in_place (fun x -> x mod 2 = 0) v;
  Alcotest.(check (list int)) "filter_in_place" [ 4; 2 ] (IV.to_list v);
  IV.sort_in_place compare v;
  Alcotest.(check (list int)) "sort_in_place" [ 2; 4 ] (IV.to_list v);
  IV.clear v;
  check_int "clear" 0 (IV.size v)

let prop_ivec_matches_list =
  QCheck.Test.make ~name:"ivec round-trips and filters like a list" ~count:200
    QCheck.(pair (list small_signed_int) QCheck.small_signed_int)
    (fun (xs, pivot) ->
      let v = IV.of_list xs in
      IV.to_list v = xs
      &&
      (IV.filter_in_place (fun x -> x < pivot) v;
       IV.to_list v = List.filter (fun x -> x < pivot) xs))

let prop_heap_is_sorting =
  QCheck.Test.make ~name:"heap drains in activity order" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 30) (float_range 0.0 100.0))
    (fun floats ->
      let n = List.length floats in
      let arr = Array.of_list floats in
      let activity = farr_init n (fun i -> arr.(i)) in
      let h = H.create n activity in
      for v = 0 to n - 1 do
        H.insert h v
      done;
      let drained = List.init n (fun _ -> activity.{H.remove_max h}) in
      drained = List.sort (fun a b -> Float.compare b a) drained)

let suite =
  [
    ( "sat.vec",
      [
        Alcotest.test_case "push/get/set" `Quick test_vec_push_get;
        Alcotest.test_case "bounds" `Quick test_vec_bounds;
        Alcotest.test_case "pop/last/clear" `Quick test_vec_pop_last;
        Alcotest.test_case "filter_in_place" `Quick test_vec_filter_in_place;
        Alcotest.test_case "sort_in_place" `Quick test_vec_sort;
        Alcotest.test_case "iter" `Quick test_vec_iter;
      ] );
    ( "sat.var_heap",
      [
        Alcotest.test_case "max order" `Quick test_heap_max_order;
        Alcotest.test_case "ties by index" `Quick test_heap_ties_by_index;
        Alcotest.test_case "update after boost" `Quick test_heap_update;
        Alcotest.test_case "idempotent insert" `Quick test_heap_insert_idempotent;
        Alcotest.test_case "mem and rebuild" `Quick test_heap_mem_and_rebuild;
        Alcotest.test_case "grow" `Quick test_heap_grow;
        Alcotest.test_case "decrease-key after insert" `Quick test_heap_decrease_key;
        Alcotest.test_case "decay/rescale preserves order" `Quick test_heap_rescale;
        QCheck_alcotest.to_alcotest prop_heap_is_sorting;
        QCheck_alcotest.to_alcotest prop_heap_random_ops;
      ] );
    ( "sat.ivec",
      [
        Alcotest.test_case "push/get/set" `Quick test_ivec_push_get_set;
        Alcotest.test_case "push2 pairs" `Quick test_ivec_push2_pairs;
        Alcotest.test_case "shrink/clear/filter/sort" `Quick test_ivec_shrink_clear_filter;
        QCheck_alcotest.to_alcotest prop_ivec_matches_list;
      ] );
  ]
