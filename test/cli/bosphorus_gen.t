Instance generation round-trips through the main tool:

  $ bosphorus-gen simon --rounds 4 --plaintexts 2 --seed 7 -o simon.anf
  c simon32/64 rounds=4 plaintexts=2 key=fc4b88ccd06326cb
  wrote 224 equations to simon.anf
  $ bosphorus simon.anf --no-learning --solve minisat | grep -oE "final solve \(minisat\): (SAT|UNSAT)"
  final solve (minisat): SAT

  $ bosphorus-gen speck --rounds 3 --plaintexts 2 --seed 7 -o speck.anf
  wrote 247 equations to speck.anf
  $ bosphorus speck.anf --no-learning --solve cms5 | grep -oE "final solve \(cms5\): (SAT|UNSAT)"
  final solve (cms5): SAT

  $ bosphorus-gen aes --sr 1,2,2,4 --seed 3 -o aes.anf
  wrote 48 equations to aes.anf
  $ bosphorus aes.anf --no-learning --solve lingeling | grep -oE "final solve \(lingeling\): (SAT|UNSAT)"
  final solve (lingeling): SAT

  $ bosphorus-gen parity --vertices 10 --unsat --seed 1 -o parity.cnf
  wrote 37 clauses to parity.cnf
  $ bosphorus parity.cnf | head -1
  status: UNSATISFIABLE

  $ bosphorus-gen ksat --vars 20 --clauses 40 --seed 2 | head -1
  p cnf 20 40
