(* Benchmark harness: regenerates every table and figure of the paper
   (DESIGN.md experiments E1-E8, A1, A2) plus kernel micro-benchmarks.

   Usage:
     dune exec bench/main.exe                 run everything
     dune exec bench/main.exe -- table2       one experiment
     dune exec bench/main.exe -- table2 --family simon --quick
   Experiments: table1 example fig2 table2 ablation encoding-sweep
   representations micro *)

let usage () =
  print_endline
    "usage: main.exe \
     [table1|example|fig2|table2|ablation|encoding-sweep|representations|micro]*\n\
    \       [--quick] [--family aes|simon|speck|bitcoin|sat]";
  exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let family_filter =
    let rec find = function
      | "--family" :: f :: _ -> Some f
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let selected =
    List.filter
      (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--"))
      (List.filter (fun a -> family_filter <> Some a) args)
  in
  let all = [ "table1"; "example"; "fig2"; "table2"; "ablation"; "encoding-sweep"; "representations"; "micro" ] in
  let selected = if selected = [] then all else selected in
  List.iter
    (fun name ->
      match name with
      | "table1" -> Experiments.table1 ()
      | "example" -> Experiments.example ()
      | "fig2" -> Experiments.fig2 ()
      | "table2" -> Experiments.table2 ~quick ?family_filter ()
      | "ablation" -> Experiments.ablation ()
      | "encoding-sweep" -> Experiments.encoding_sweep ()
      | "representations" -> Experiments.representations ()
      | "micro" -> Micro.run ()
      | other ->
          Printf.eprintf "unknown experiment %S\n" other;
          usage ())
    selected
