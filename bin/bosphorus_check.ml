(* bosphorus_check: the repo's own static analyzer.  Reads the .cmt
   typedtrees dune already emitted, enforces the domain-safety and
   allocation-discipline rules (see DESIGN.md "Static analysis &
   domain-safety rules"), and exits non-zero on unwaived findings — the
   CI static-check gate. *)

let find_root start =
  let rec up dir n =
    if n > 6 then None
    else if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else up parent (n + 1)
  in
  up start 0

let load_manifest path =
  if Sys.file_exists path then
    match Check.Manifest.load path with
    | Ok m -> Ok m
    | Error e -> Error (`Msg e)
  else Ok Check.Manifest.default

let load_waivers path =
  if Sys.file_exists path then
    match Check.Waivers.load path with
    | Ok w -> Ok w
    | Error e -> Error (`Msg e)
  else Ok Check.Waivers.empty

let run root build_dir scan_dirs manifest_path waivers_path json quiet =
  let ( let* ) = Result.bind in
  let* root =
    match root with
    | Some r -> Ok r
    | None -> (
        match find_root (Sys.getcwd ()) with
        | Some r -> Ok r
        | None -> Error (`Msg "cannot find dune-project; pass --root"))
  in
  let in_root p = if Filename.is_relative p then Filename.concat root p else p in
  let* manifest = load_manifest (in_root manifest_path) in
  let* waivers = load_waivers (in_root waivers_path) in
  let config =
    {
      Check.Engine.default_config with
      root;
      build_dir;
      manifest;
      waivers;
      scan_dirs =
        (match scan_dirs with
        | [] -> Check.Engine.default_config.Check.Engine.scan_dirs
        | ds -> ds);
    }
  in
  let report = Check.Engine.run config in
  if not quiet then Format.printf "%a" Check.Engine.pp_report report;
  Option.iter
    (fun path ->
      Harness.Json_out.Value.write path (Check.Engine.to_json report);
      if not quiet then Format.printf "report: wrote %s@." path)
    json;
  if report.Check.Engine.n_modules = 0 then
    (* analyzing nothing must not pass vacuously (wrong root, or dune
       build has not run) *)
    Error
      (`Msg
        (Printf.sprintf
           "no .cmt files found under %s — run `dune build` first (or fix \
            --root/--build-dir)"
           (Filename.concat root build_dir)))
  else if Check.Engine.ok report then Ok ()
  else Error (`Msg "unwaived findings (or analysis errors) — see above")

open Cmdliner

let root =
  Arg.(
    value
    & opt (some string) None
    & info [ "root" ] ~docv:"DIR"
        ~doc:"Repository root (default: nearest ancestor with dune-project).")

let build_dir =
  Arg.(
    value
    & opt string "_build/default"
    & info [ "build-dir" ] ~docv:"DIR"
        ~doc:"Build context holding the .cmt files, relative to the root.")

let scan_dirs =
  Arg.(
    value
    & opt_all string []
    & info [ "dir" ] ~docv:"DIR"
        ~doc:
          "Source directory prefix to analyze (repeatable; default lib, bin \
           and bench).")

let manifest_path =
  Arg.(
    value
    & opt string "check.hotpaths"
    & info [ "manifest" ] ~docv:"FILE"
        ~doc:
          "Hot-path/parallel/immediate-type manifest (missing file: empty \
           manifest with the default poly-compare scope).")

let waivers_path =
  Arg.(
    value
    & opt string "check.waivers"
    & info [ "waivers" ] ~docv:"FILE"
        ~doc:"Waiver baseline (missing file: no baseline waivers).")

let json =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write the JSON report to $(docv).")

let quiet =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress the text report.")

let cmd =
  let doc =
    "static analysis over the repository's typedtrees: domain-safety and \
     hot-path allocation discipline"
  in
  let term =
    Term.(
      const run $ root $ build_dir $ scan_dirs $ manifest_path $ waivers_path
      $ json $ quiet)
  in
  Cmd.v
    (Cmd.info "bosphorus_check" ~doc)
    Term.(term_result term)

let () = exit (Cmd.eval cmd)
