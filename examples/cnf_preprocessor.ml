(* Bosphorus as a CNF preprocessor (paper Section III-D).

   Takes a CNF with hidden XOR structure (a parity chain), converts it to
   ANF via the product-of-negated-literals encoding, learns facts with the
   XL-ElimLin-SAT loop, and returns the original CNF augmented with the
   learnt facts - then compares CDCL effort with and without them.

   Run with: dune exec examples/cnf_preprocessor.exe *)

let () =
  let rng = Random.State.make [| 4242 |] in
  (* an inconsistent parity chain: pure CDCL needs exponential-ish search,
     GF(2) reasoning sees the contradiction instantly *)
  let formula = Problems.Generators.parity_chain ~vertices:36 ~satisfiable:false ~rng in
  Format.printf "input CNF: %d vars, %d clauses (parity chain, UNSAT by construction)@."
    (Cnf.Formula.nvars formula)
    (Cnf.Formula.n_clauses formula);

  let solve name f =
    let (out : Sat.Profiles.output), secs =
      Harness.Timing.time (fun () -> Sat.Profiles.solve Sat.Profiles.Minisat f)
    in
    let conflicts =
      match out.Sat.Profiles.stats with Some st -> st.Sat.Types.conflicts | None -> 0
    in
    Format.printf "  %-22s %a  %8.3fs  %6d conflicts@." name Sat.Types.pp_result
      out.Sat.Profiles.result secs conflicts
  in

  Format.printf "@.plain CDCL (minisat profile):@.";
  solve "original" formula;

  Format.printf "@.Bosphorus preprocessing:@.";
  let config = { Bosphorus.Config.default with Bosphorus.Config.stop_on_solution = false } in
  let (outcome : Bosphorus.Driver.outcome), secs =
    Harness.Timing.time (fun () -> Bosphorus.Driver.run_cnf ~config formula)
  in
  Format.printf "  learning loop: %.3fs, %d facts (XL %d, ElimLin %d, SAT %d, propagation %d)@."
    secs
    (Bosphorus.Facts.size outcome.Bosphorus.Driver.facts)
    (Bosphorus.Facts.count_by outcome.Bosphorus.Driver.facts Bosphorus.Facts.Xl)
    (Bosphorus.Facts.count_by outcome.Bosphorus.Driver.facts Bosphorus.Facts.Elimlin)
    (Bosphorus.Facts.count_by outcome.Bosphorus.Driver.facts Bosphorus.Facts.Sat_solver)
    (Bosphorus.Facts.count_by outcome.Bosphorus.Driver.facts Bosphorus.Facts.Propagation);
  match outcome.Bosphorus.Driver.status with
  | Bosphorus.Driver.Solved_unsat ->
      Format.printf "  the ANF techniques derived 1 = 0: UNSAT without any CDCL search@."
  | Bosphorus.Driver.Solved_sat _ ->
      Format.printf "  solved during preprocessing (SAT)@."
  | Bosphorus.Driver.Processed | Bosphorus.Driver.Degraded ->
      let augmented = Bosphorus.Driver.augmented_cnf formula outcome in
      Format.printf "  augmented CNF: %d clauses (was %d)@."
        (Cnf.Formula.n_clauses augmented)
        (Cnf.Formula.n_clauses formula);
      Format.printf "@.CDCL on the augmented CNF:@.";
      solve "original + facts" augmented
