let satisfies assignment polys =
  List.for_all (fun p -> not (Poly.eval assignment p)) polys

let vars_of polys =
  let module S = Set.Make (Int) in
  let s =
    List.fold_left
      (fun s p -> List.fold_left (fun s x -> S.add x s) s (Poly.vars p))
      S.empty polys
  in
  S.elements s

let max_brute_force_vars = 24

let fold_assignments polys init f =
  let vars = Array.of_list (vars_of polys) in
  let n = Array.length vars in
  if n > max_brute_force_vars then
    invalid_arg "Eval: brute force limited to 24 variables";
  let acc = ref init in
  for mask = 0 to (1 lsl n) - 1 do
    let lookup x =
      (* linear scan is fine at these sizes and keeps the oracle dead simple *)
      let rec idx i = if vars.(i) = x then i else idx (i + 1) in
      mask lsr idx 0 land 1 = 1
    in
    if satisfies lookup polys then
      acc := f !acc (Array.to_list (Array.mapi (fun i x -> (x, mask lsr i land 1 = 1)) vars))
  done;
  !acc

let all_solutions polys = List.rev (fold_assignments polys [] (fun acc sol -> sol :: acc))
let count_solutions polys = fold_assignments polys 0 (fun acc _ -> acc + 1)

exception Found

let solution_exists polys =
  try
    ignore (fold_assignments polys () (fun () _ -> raise Found));
    false
  with Found -> true

let equisatisfiable a b = solution_exists a = solution_exists b
