(* Tests for the CDCL SAT solver. *)

module L = Cnf.Lit
module S = Sat.Solver

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let clause lits = List.map L.of_dimacs lits

let solver_of_dimacs_clauses ~nvars cls =
  let s = S.create ~nvars () in
  List.iter (fun c -> ignore (S.add_clause s (clause c))) cls;
  s

let is_sat = function Sat.Types.Sat _ -> true | Sat.Types.Unsat | Sat.Types.Undecided -> false
let is_unsat = function Sat.Types.Unsat -> true | Sat.Types.Sat _ | Sat.Types.Undecided -> false

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let test_empty_formula () =
  let s = S.create ~nvars:3 () in
  check "sat" true (is_sat (S.solve s))

let test_single_unit () =
  let s = solver_of_dimacs_clauses ~nvars:1 [ [ 1 ] ] in
  (match S.solve s with
  | Sat.Types.Sat model -> check "x0 true" true model.(0)
  | Sat.Types.Unsat | Sat.Types.Undecided -> Alcotest.fail "expected SAT");
  check_int "one root unit" 1 (List.length (S.root_units s))

let test_contradictory_units () =
  let s = S.create ~nvars:1 () in
  check "first ok" true (S.add_clause s (clause [ 1 ]));
  check "second fails" false (S.add_clause s (clause [ -1 ]));
  check "unsat" true (is_unsat (S.solve s));
  check "not okay" false (S.okay s)

let test_implication_chain () =
  (* x0, x0->x1, x1->x2, ..., all forced true *)
  let n = 30 in
  let cls = [ 1 ] :: List.init (n - 1) (fun i -> [ -(i + 1); i + 2 ]) in
  let s = solver_of_dimacs_clauses ~nvars:n cls in
  match S.solve s with
  | Sat.Types.Sat model -> check "all true" true (Array.for_all Fun.id model)
  | Sat.Types.Unsat | Sat.Types.Undecided -> Alcotest.fail "expected SAT"

let test_simple_unsat () =
  (* (x|y) (x|~y) (~x|y) (~x|~y) *)
  let s = solver_of_dimacs_clauses ~nvars:2 [ [ 1; 2 ]; [ 1; -2 ]; [ -1; 2 ]; [ -1; -2 ] ] in
  check "unsat" true (is_unsat (S.solve s))

let test_tautology_ignored () =
  let s = solver_of_dimacs_clauses ~nvars:2 [ [ 1; -1 ] ] in
  check "sat" true (is_sat (S.solve s))

let test_duplicate_literals () =
  let s = solver_of_dimacs_clauses ~nvars:1 [ [ 1; 1; 1 ] ] in
  match S.solve s with
  | Sat.Types.Sat model -> check "forced" true model.(0)
  | Sat.Types.Unsat | Sat.Types.Undecided -> Alcotest.fail "expected SAT"

let pigeonhole ~holes =
  (* PHP(holes+1, holes): unsatisfiable.  Pigeon p in hole h is variable
     p*holes + h + 1 (DIMACS). *)
  let pigeons = holes + 1 in
  let v p h = (p * holes) + h + 1 in
  let at_least = List.init pigeons (fun p -> List.init holes (fun h -> v p h)) in
  let at_most =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p1 ->
            List.filter_map
              (fun p2 -> if p2 > p1 then Some [ -(v p1 h); -(v p2 h) ] else None)
              (List.init pigeons Fun.id))
          (List.init pigeons Fun.id))
      (List.init holes Fun.id)
  in
  at_least @ at_most

let test_pigeonhole_unsat () =
  List.iter
    (fun holes ->
      let s = solver_of_dimacs_clauses ~nvars:((holes + 1) * holes) (pigeonhole ~holes) in
      check (Printf.sprintf "php %d unsat" holes) true (is_unsat (S.solve s)))
    [ 2; 3; 4; 5 ]

let test_pigeonhole_sat_when_equal () =
  (* pigeons = holes: satisfiable (drop the extra pigeon). *)
  let holes = 4 in
  let v p h = (p * holes) + h + 1 in
  let cls =
    List.init holes (fun p -> List.init holes (fun h -> v p h))
    @ List.concat_map
        (fun h ->
          List.concat_map
            (fun p1 ->
              List.filter_map
                (fun p2 -> if p2 > p1 then Some [ -(v p1 h); -(v p2 h) ] else None)
                (List.init holes Fun.id))
            (List.init holes Fun.id))
        (List.init holes Fun.id)
  in
  let s = solver_of_dimacs_clauses ~nvars:(holes * holes) cls in
  check "sat" true (is_sat (S.solve s))

let test_conflict_budget () =
  (* A hard instance with a tiny budget must return Undecided. *)
  let holes = 7 in
  let s = solver_of_dimacs_clauses ~nvars:((holes + 1) * holes) (pigeonhole ~holes) in
  match S.solve ~conflict_budget:5 s with
  | Sat.Types.Undecided -> ()
  | Sat.Types.Sat _ -> Alcotest.fail "php8x7 should not be SAT"
  | Sat.Types.Unsat -> Alcotest.fail "budget of 5 conflicts cannot refute php8x7"

let test_conflict_budget_exact () =
  (* Regression pin for the documented off-by-at-most-one contract: an
     Undecided return under budget b >= 1 spends exactly b conflicts; a
     budget of 0 still permits the single conflict needed to notice it.
     The driver's cumulative accounting (Harness.Budget) relies on this —
     it charges solver-reported stats diffs, never requested budgets. *)
  let holes = 8 in
  let fresh () =
    solver_of_dimacs_clauses ~nvars:((holes + 1) * holes) (pigeonhole ~holes)
  in
  List.iter
    (fun b ->
      let s = fresh () in
      (match S.solve ~conflict_budget:b s with
      | Sat.Types.Undecided -> ()
      | Sat.Types.Sat _ | Sat.Types.Unsat ->
          Alcotest.failf "budget %d cannot decide php9x8" b);
      check_int
        (Printf.sprintf "budget %d spends exactly %d conflicts" b b)
        b (S.stats s).Sat.Types.conflicts)
    [ 1; 5; 50 ];
  let s = fresh () in
  (match S.solve ~conflict_budget:0 s with
  | Sat.Types.Undecided -> ()
  | Sat.Types.Sat _ | Sat.Types.Unsat -> Alcotest.fail "budget 0 cannot decide");
  check_int "budget 0 spends the one noticing conflict" 1
    (S.stats s).Sat.Types.conflicts;
  (* cumulative accounting across calls on one solver: the second call
     adds exactly its own budget on top of the first's *)
  let s = fresh () in
  ignore (S.solve ~conflict_budget:7 s);
  let c1 = (S.stats s).Sat.Types.conflicts in
  check_int "first call charged exactly" 7 c1;
  (match S.solve ~conflict_budget:11 s with
  | Sat.Types.Undecided -> ()
  | Sat.Types.Sat _ | Sat.Types.Unsat -> Alcotest.fail "still undecidable");
  check_int "stats diff is the second budget" 11 ((S.stats s).Sat.Types.conflicts - c1)

let test_budget_resume () =
  (* Solving again without budget after Undecided completes the proof. *)
  let holes = 5 in
  let s = solver_of_dimacs_clauses ~nvars:((holes + 1) * holes) (pigeonhole ~holes) in
  (match S.solve ~conflict_budget:3 s with
  | Sat.Types.Undecided -> ()
  | Sat.Types.Sat _ | Sat.Types.Unsat -> Alcotest.fail "expected Undecided on tiny budget");
  check "resumed to unsat" true (is_unsat (S.solve s))

let test_model_satisfies_formula () =
  let cls = [ [ 1; 2; -3 ]; [ -1; 3 ]; [ 2; 3 ]; [ -2; -3; 1 ] ] in
  let s = solver_of_dimacs_clauses ~nvars:3 cls in
  match S.solve s with
  | Sat.Types.Sat model ->
      let assignment v = model.(v) in
      List.iter
        (fun c ->
          check "clause satisfied" true
            (List.exists (fun d -> L.eval assignment (L.of_dimacs d)) c))
        cls
  | Sat.Types.Unsat | Sat.Types.Undecided -> Alcotest.fail "expected SAT"

let test_new_var_growth () =
  let s = S.create ~nvars:0 () in
  let a = S.new_var s in
  let b = S.new_var s in
  check_int "vars allocated" 2 (S.nvars s);
  ignore (S.add_clause s [ L.pos a; L.pos b ]);
  check "sat" true (is_sat (S.solve s))

let test_add_formula () =
  let f =
    Cnf.Dimacs.parse_string "p cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n"
  in
  let s = S.create ~nvars:0 () in
  check "added" true (S.add_formula s f);
  check "sat" true (is_sat (S.solve s))

let test_stats_populated () =
  let holes = 5 in
  let s = solver_of_dimacs_clauses ~nvars:((holes + 1) * holes) (pigeonhole ~holes) in
  ignore (S.solve s);
  let st = S.stats s in
  check "conflicts counted" true (st.Sat.Types.conflicts > 0);
  check "decisions counted" true (st.Sat.Types.decisions > 0);
  check "propagations counted" true (st.Sat.Types.propagations > 0)

(* ------------------------------------------------------------------ *)
(* Native XOR constraints                                              *)
(* ------------------------------------------------------------------ *)

let test_xor_unit_propagation () =
  (* x0+x1+x2 = 1 with x0 = 0, x1 = 1 forces x2 = 0 *)
  let s = S.create ~nvars:3 () in
  check "xor added" true (S.add_xor s ~vars:[ 0; 1; 2 ] ~parity:true);
  ignore (S.add_clause s (clause [ -1 ]));
  ignore (S.add_clause s (clause [ 2 ]));
  match S.solve s with
  | Sat.Types.Sat model ->
      check "x2 forced false" false model.(2)
  | Sat.Types.Unsat | Sat.Types.Undecided -> Alcotest.fail "expected SAT"

let test_xor_chain_conflict () =
  (* x0+x1=1, x1+x2=1, x0+x2=1: odd cycle, UNSAT *)
  let s = S.create ~nvars:3 () in
  check "a" true (S.add_xor s ~vars:[ 0; 1 ] ~parity:true);
  check "b" true (S.add_xor s ~vars:[ 1; 2 ] ~parity:true);
  check "c" true (S.add_xor s ~vars:[ 0; 2 ] ~parity:true);
  check "unsat" true (is_unsat (S.solve s))

let test_xor_root_folding () =
  (* duplicate variables cancel; root units fold into the parity *)
  let s = S.create ~nvars:3 () in
  ignore (S.add_clause s (clause [ 1 ]));
  (* x0 = 1, so x0+x1+x1+x2 = 1 reduces to x2 = 0 *)
  check "added" true (S.add_xor s ~vars:[ 0; 1; 1; 2 ] ~parity:true);
  match S.solve s with
  | Sat.Types.Sat model -> check "x2 false" false model.(2)
  | Sat.Types.Unsat | Sat.Types.Undecided -> Alcotest.fail "expected SAT"

let test_xor_empty_inconsistent () =
  let s = S.create ~nvars:1 () in
  ignore (S.add_clause s (clause [ 1 ]));
  (* x0+x0 = 1 folds to 0 = 1 *)
  check "conflict" false (S.add_xor s ~vars:[ 0; 0 ] ~parity:true);
  check "unsat" true (is_unsat (S.solve s))

let test_xor_long_chain_sat () =
  (* a long xor chain with one anchor: x0=1 and x_i + x_{i+1} = 1 forces an
     alternating assignment *)
  let n = 40 in
  let s = S.create ~nvars:n () in
  ignore (S.add_clause s (clause [ 1 ]));
  for i = 0 to n - 2 do
    ignore (S.add_xor s ~vars:[ i; i + 1 ] ~parity:true)
  done;
  match S.solve s with
  | Sat.Types.Sat model ->
      for i = 0 to n - 1 do
        check "alternating" (i mod 2 = 0) model.(i)
      done
  | Sat.Types.Unsat | Sat.Types.Undecided -> Alcotest.fail "expected SAT"

let prop_native_xor_matches_brute_force =
  (* random mixed CNF + XOR systems: the native engine agrees with brute
     force over the clause encoding of the same xors *)
  let gen =
    QCheck.Gen.(
      let* nvars = int_range 2 9 in
      let* n_clauses = int_range 0 10 in
      let* clauses =
        list_repeat n_clauses
          (let* len = int_range 1 3 in
           list_repeat len
             (let* v = int_bound (nvars - 1) in
              let* s = bool in
              return (if s then v + 1 else -(v + 1))))
      in
      let* n_xors = int_range 1 6 in
      let* xors =
        list_repeat n_xors
          (let* len = int_range 2 4 in
           let* vars = list_repeat len (int_bound (nvars - 1)) in
           let* parity = bool in
           return (vars, parity))
      in
      return (nvars, clauses, xors))
  in
  QCheck.Test.make ~name:"native xor engine agrees with brute force" ~count:300
    (QCheck.make
       ~print:(fun (n, cls, xors) ->
         Printf.sprintf "nvars=%d cls=%s xors=%s" n
           (String.concat ";" (List.map (fun c -> String.concat "," (List.map string_of_int c)) cls))
           (String.concat ";"
              (List.map
                 (fun (vs, p) ->
                   String.concat "+" (List.map string_of_int vs) ^ "=" ^ string_of_bool p)
                 xors)))
       gen)
    (fun (nvars, cls, xors) ->
      (* reference: encode xors as clauses *)
      let xor_clauses =
        List.concat_map
          (fun (vars, parity) ->
            Sat.Xor_module.clauses_of_xor (Sat.Xor_module.make_xor ~vars ~parity))
          xors
      in
      let base_clauses = List.map (fun c -> Cnf.Clause.of_list (List.map L.of_dimacs c)) cls in
      let f = Cnf.Formula.create ~nvars (base_clauses @ xor_clauses) in
      let expected = Cnf.Formula.brute_force_sat f = Some true in
      (* native: clauses plus add_xor *)
      let s = S.create ~nvars () in
      let ok =
        List.for_all (fun c -> S.add_clause s (clause c)) cls
        && List.for_all (fun (vars, parity) -> S.add_xor s ~vars ~parity) xors
      in
      if not ok then not expected
      else
        match S.solve s with
        | Sat.Types.Sat model -> expected && Cnf.Formula.eval (fun v -> model.(v)) f
        | Sat.Types.Unsat -> not expected
        | Sat.Types.Undecided -> false)

(* ------------------------------------------------------------------ *)
(* Property tests: CDCL agrees with brute force                        *)
(* ------------------------------------------------------------------ *)

let random_cnf_gen =
  QCheck.Gen.(
    let* nvars = int_range 1 10 in
    let* n_clauses = int_range 1 40 in
    let* clauses =
      list_repeat n_clauses
        (let* len = int_range 1 4 in
         list_repeat len
           (let* v = int_bound (nvars - 1) in
            let* s = bool in
            return (if s then v + 1 else -(v + 1))))
    in
    return (nvars, clauses))

let arb_cnf =
  QCheck.make
    ~print:(fun (n, cls) ->
      Printf.sprintf "nvars=%d %s" n
        (String.concat " ; " (List.map (fun c -> String.concat "," (List.map string_of_int c)) cls)))
    random_cnf_gen

let formula_of (nvars, cls) =
  Cnf.Formula.create ~nvars
    (List.map (fun c -> Cnf.Clause.of_list (List.map L.of_dimacs c)) cls)

let prop_cdcl_matches_brute_force =
  QCheck.Test.make ~name:"solver agrees with brute force" ~count:500 arb_cnf
    (fun (nvars, cls) ->
      let f = formula_of (nvars, cls) in
      let expected = Cnf.Formula.brute_force_sat f in
      let s = solver_of_dimacs_clauses ~nvars cls in
      let got = S.solve s in
      match (expected, got) with
      | Some true, Sat.Types.Sat model -> Cnf.Formula.eval (fun v -> model.(v)) f
      | Some false, Sat.Types.Unsat -> true
      | _, Sat.Types.Undecided -> false
      | Some true, Sat.Types.Unsat | Some false, Sat.Types.Sat _ | None, _ -> false)

let prop_root_units_are_consequences =
  QCheck.Test.make ~name:"root units are logical consequences" ~count:200 arb_cnf
    (fun (nvars, cls) ->
      let f = formula_of (nvars, cls) in
      let s = solver_of_dimacs_clauses ~nvars cls in
      ignore (S.solve s);
      if not (S.okay s) then true
      else
        (* every model of f must satisfy every root unit *)
        let units = S.root_units s in
        let ok = ref true in
        (try
           for mask = 0 to (1 lsl Cnf.Formula.nvars f) - 1 do
             let assignment v = mask lsr v land 1 = 1 in
             if Cnf.Formula.eval assignment f then
               List.iter
                 (fun u -> if L.var u < Cnf.Formula.nvars f && not (L.eval assignment u) then ok := false)
                 units
           done
         with Invalid_argument _ -> ());
        !ok)

let prop_learnt_clauses_are_implied =
  QCheck.Test.make ~name:"learnt clauses are implied by the formula" ~count:150 arb_cnf
    (fun (nvars, cls) ->
      let f = formula_of (nvars, cls) in
      let s = solver_of_dimacs_clauses ~nvars cls in
      ignore (S.solve s);
      let learnts = S.learnt_clauses s in
      let ok = ref true in
      for mask = 0 to (1 lsl Cnf.Formula.nvars f) - 1 do
        let assignment v = mask lsr v land 1 = 1 in
        if Cnf.Formula.eval assignment f then
          List.iter
            (fun c ->
              if
                List.for_all (fun l -> L.var l < Cnf.Formula.nvars f) c
                && not (List.exists (L.eval assignment) c)
              then ok := false)
            learnts
      done;
      !ok)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_cdcl_matches_brute_force;
      prop_root_units_are_consequences;
      prop_learnt_clauses_are_implied;
      prop_native_xor_matches_brute_force;
    ]

let main_suite =
  [
    ( "sat.solver",
      [
        Alcotest.test_case "empty formula" `Quick test_empty_formula;
        Alcotest.test_case "single unit" `Quick test_single_unit;
        Alcotest.test_case "contradictory units" `Quick test_contradictory_units;
        Alcotest.test_case "implication chain" `Quick test_implication_chain;
        Alcotest.test_case "simple unsat" `Quick test_simple_unsat;
        Alcotest.test_case "tautology ignored" `Quick test_tautology_ignored;
        Alcotest.test_case "duplicate literals" `Quick test_duplicate_literals;
        Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole_unsat;
        Alcotest.test_case "pigeonhole sat at equality" `Quick test_pigeonhole_sat_when_equal;
        Alcotest.test_case "conflict budget" `Quick test_conflict_budget;
        Alcotest.test_case "conflict budget exact off-by-one" `Quick
          test_conflict_budget_exact;
        Alcotest.test_case "budget then resume" `Quick test_budget_resume;
        Alcotest.test_case "model satisfies formula" `Quick test_model_satisfies_formula;
        Alcotest.test_case "new_var growth" `Quick test_new_var_growth;
        Alcotest.test_case "add_formula" `Quick test_add_formula;
        Alcotest.test_case "stats populated" `Quick test_stats_populated;
      ] );
    ( "sat.native_xor",
      [
        Alcotest.test_case "unit propagation through xor" `Quick test_xor_unit_propagation;
        Alcotest.test_case "odd cycle conflict" `Quick test_xor_chain_conflict;
        Alcotest.test_case "root folding" `Quick test_xor_root_folding;
        Alcotest.test_case "degenerate inconsistency" `Quick test_xor_empty_inconsistent;
        Alcotest.test_case "long alternating chain" `Quick test_xor_long_chain_sat;
      ] );
    ("sat.properties", qcheck_cases);
  ]

(* ------------------------------------------------------------------ *)
(* Proof logging and RUP checking                                      *)
(* ------------------------------------------------------------------ *)

let test_proof_simple_unsat () =
  let cls = [ [ 1; 2 ]; [ 1; -2 ]; [ -1; 2 ]; [ -1; -2 ] ] in
  let s = S.create ~nvars:2 () in
  S.enable_proof s;
  List.iter (fun c -> ignore (S.add_clause s (clause c))) cls;
  check "unsat" true (is_unsat (S.solve s));
  let proof = S.proof s in
  check "ends with empty clause" true (List.exists (fun st -> st = []) proof);
  let f = Cnf.Formula.create ~nvars:2 (List.map (fun c -> Cnf.Clause.of_list (clause c)) cls) in
  check "certificate verifies" true (Sat.Proof.check f proof)

let test_proof_pigeonhole () =
  List.iter
    (fun holes ->
      let cls = pigeonhole ~holes in
      let nvars = (holes + 1) * holes in
      let s = S.create ~nvars () in
      S.enable_proof s;
      List.iter (fun c -> ignore (S.add_clause s (clause c))) cls;
      check "unsat" true (is_unsat (S.solve s));
      let f =
        Cnf.Formula.create ~nvars (List.map (fun c -> Cnf.Clause.of_list (clause c)) cls)
      in
      check
        (Printf.sprintf "php %d certificate verifies" holes)
        true
        (Sat.Proof.check f (S.proof s)))
    [ 3; 4; 5 ]

let test_proof_rejects_bogus () =
  (* a fabricated certificate must be rejected *)
  let f = Cnf.Dimacs.parse_string "p cnf 3 2\n1 2 0\n-1 3 0\n" in
  (* claiming the empty clause out of thin air *)
  check "bogus rejected" false (Sat.Proof.check f [ [] ]);
  (* claiming a non-implied unit *)
  check "non-implied step rejected" false
    (Sat.Proof.check f [ [ L.pos 0 ]; [] ]);
  (* a missing empty clause is not a certificate *)
  check "no empty clause" false (Sat.Proof.check f [ [ L.pos 0; L.pos 2 ] ])

let test_proof_is_rup_direct () =
  (* from (a|b) and (~a|b), b is RUP *)
  let clauses = [ [ L.pos 0; L.pos 1 ]; [ L.neg_of 0; L.pos 1 ] ] in
  check "b is rup" true (Sat.Proof.is_rup ~clauses [ L.pos 1 ]);
  check "a is not rup" false (Sat.Proof.is_rup ~clauses [ L.pos 0 ]);
  (* tautological step is trivially fine *)
  check "tautology" true (Sat.Proof.is_rup ~clauses [ L.pos 2; L.neg_of 2 ])

let test_proof_is_rup_edge_cases () =
  (* empty clause list: nothing propagates, nothing conflicts *)
  check "empty formula, unit step" false (Sat.Proof.is_rup ~clauses:[] [ L.pos 0 ]);
  check "empty formula, empty step" false (Sat.Proof.is_rup ~clauses:[] []);
  (* contradictory units make the empty clause RUP *)
  let contradictory = [ [ L.pos 0 ]; [ L.neg_of 0 ] ] in
  check "empty step vs x & ~x" true (Sat.Proof.is_rup ~clauses:contradictory []);
  (* unit-clause steps chain through propagation: x0, x0->x1, x1->x2 *)
  let chain = [ [ L.pos 0 ]; [ L.neg_of 0; L.pos 1 ]; [ L.neg_of 1; L.pos 2 ] ] in
  check "unit step x1" true (Sat.Proof.is_rup ~clauses:chain [ L.pos 1 ]);
  check "unit step x2" true (Sat.Proof.is_rup ~clauses:chain [ L.pos 2 ]);
  (* a deliberately non-RUP step: x3 is unconstrained *)
  check "non-rup step" false (Sat.Proof.is_rup ~clauses:chain [ L.pos 3 ]);
  check "non-rup negated unit" false (Sat.Proof.is_rup ~clauses:chain [ L.neg_of 2 ])

let test_proof_check_requires_empty_clause () =
  (* a valid derivation that never reaches the empty clause is not a
     refutation certificate *)
  let f =
    Cnf.Formula.create ~nvars:2
      [
        Cnf.Clause.of_list [ L.pos 0; L.pos 1 ];
        Cnf.Clause.of_list [ L.neg_of 0; L.pos 1 ];
      ]
  in
  check "rup steps but no empty clause" false (Sat.Proof.check f [ [ L.pos 1 ] ]);
  check "empty proof" false (Sat.Proof.check f [])

let test_invariant_violations_healthy () =
  let s =
    solver_of_dimacs_clauses ~nvars:4
      [ [ 1; 2 ]; [ -1; 3 ]; [ -2; -3; 4 ]; [ 1; -4 ] ]
  in
  Alcotest.(check (list string)) "fresh solver" [] (S.invariant_violations s);
  ignore (S.solve s);
  Alcotest.(check (list string)) "after solve" [] (S.invariant_violations s)

let prop_unsat_proofs_verify =
  QCheck.Test.make ~name:"every UNSAT run yields a verifiable certificate" ~count:300
    arb_cnf
    (fun (nvars, cls) ->
      let f = formula_of (nvars, cls) in
      let s = S.create ~nvars () in
      S.enable_proof s;
      List.iter (fun c -> ignore (S.add_clause s (clause c))) cls;
      match S.solve s with
      | Sat.Types.Unsat -> Sat.Proof.check f (S.proof s)
      | Sat.Types.Sat _ | Sat.Types.Undecided -> true)

(* ------------------------------------------------------------------ *)
(* Probing                                                             *)
(* ------------------------------------------------------------------ *)

let test_probe_implications () =
  (* x0 -> x1 -> x2: probing x0 implies x1 and x2 *)
  let s = solver_of_dimacs_clauses ~nvars:3 [ [ -1; 2 ]; [ -2; 3 ] ] in
  (match S.probe s (L.pos 0) with
  | `Implied lits ->
      let vars = List.sort Int.compare (List.map L.var lits) in
      Alcotest.(check (list int)) "implied x1 x2" [ 1; 2 ] vars;
      check "all positive" true (List.for_all (fun l -> not (L.negated l)) lits)
  | `Conflict | `Unusable -> Alcotest.fail "expected implications");
  (* state restored: solver still solves *)
  check "still solvable" true (is_sat (S.solve s))

let test_probe_failed_literal () =
  (* x0 -> x1 and x0 -> ~x1: assuming x0 conflicts, so ~x0 is forced *)
  let s = solver_of_dimacs_clauses ~nvars:2 [ [ -1; 2 ]; [ -1; -2 ] ] in
  (match S.probe s (L.pos 0) with
  | `Conflict -> ()
  | `Implied _ | `Unusable -> Alcotest.fail "expected a failed literal");
  (match S.probe s (L.neg_of 0) with
  | `Implied [] -> ()
  | `Implied _ -> Alcotest.fail "~x0 implies nothing here"
  | `Conflict | `Unusable -> Alcotest.fail "~x0 is consistent");
  check "still solvable" true (is_sat (S.solve s))

let test_probe_assigned_unusable () =
  let s = solver_of_dimacs_clauses ~nvars:2 [ [ 1 ] ] in
  ignore (S.solve s);
  match S.probe s (L.pos 0) with
  | `Unusable -> ()
  | `Conflict | `Implied _ -> Alcotest.fail "probing an assigned literal"

let test_driver_probing_learns_equivalence () =
  (* x1 xor x2 = 1 encoded nonlinearly enough that only probing (not the
     classify shapes) sees it... simplest: give the driver a system where
     probing must find v equivalences through CNF implications.  Use the
     xor clauses directly via CNF -> ANF with probing on. *)
  let config =
    { Bosphorus.Config.default with Bosphorus.Config.sat_probe_vars = 8 }
  in
  let polys = [ Anf.Anf_io.poly_of_string "x0*x1 + x0 + x1" ] in
  (* x0*x1 + x0 + x1 = 0 means x0 or x1 is 0... and (x0,x1) != (1,1):
     actually it forces x0 = x1 = 0 or exactly one... truth table:
     00->0 ok; 01->1 no; 10->1 no; 11->1+1+1=1 no. Unique solution x0=x1=0. *)
  match (Bosphorus.Driver.run ~config polys).Bosphorus.Driver.status with
  | Bosphorus.Driver.Solved_sat sol ->
      check "x0=0" false (List.assoc 0 sol);
      check "x1=0" false (List.assoc 1 sol)
  | Bosphorus.Driver.Solved_unsat | Bosphorus.Driver.Processed
  | Bosphorus.Driver.Degraded ->
      Alcotest.fail "expected solution"

let prop_probing_driver_sound =
  QCheck.Test.make ~name:"driver with probing agrees with brute force" ~count:40
    arb_cnf
    (fun (nvars, cls) ->
      let f = formula_of (nvars, cls) in
      let expected = Cnf.Formula.brute_force_sat f = Some true in
      let config =
        { Bosphorus.Config.default with Bosphorus.Config.sat_probe_vars = 16 }
      in
      match (Bosphorus.Driver.run_cnf ~config f).Bosphorus.Driver.status with
      | Bosphorus.Driver.Solved_sat sol ->
          expected
          &&
          let lookup x = try List.assoc x sol with Not_found -> false in
          Cnf.Formula.eval lookup f
      | Bosphorus.Driver.Solved_unsat -> not expected
      | Bosphorus.Driver.Processed | Bosphorus.Driver.Degraded -> true)

let probe_suite =
  [
    ( "sat.probe",
      [
        Alcotest.test_case "implications" `Quick test_probe_implications;
        Alcotest.test_case "failed literal" `Quick test_probe_failed_literal;
        Alcotest.test_case "assigned is unusable" `Quick test_probe_assigned_unusable;
        Alcotest.test_case "driver probing solves" `Quick test_driver_probing_learns_equivalence;
        QCheck_alcotest.to_alcotest prop_probing_driver_sound;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Enumeration                                                         *)
(* ------------------------------------------------------------------ *)

let test_enumerate_simple () =
  (* (x0 | x1) has 3 models *)
  let f = formula_of (2, [ [ 1; 2 ] ]) in
  (match Sat.Enumerate.models f with
  | ms, true ->
      check_int "three models" 3 (List.length ms);
      List.iter (fun m -> check "model valid" true (Cnf.Formula.eval (fun v -> m.(v)) f)) ms
  | _, false -> Alcotest.fail "enumeration should complete");
  check "count" true (Sat.Enumerate.count f = Some 3)

let test_enumerate_limit () =
  (* unconstrained over 6 vars: 64 models; limit 10 stops early *)
  let f = Cnf.Formula.create ~nvars:6 [ Cnf.Clause.of_list [ L.pos 0; L.neg_of 0 ] ] in
  let f = Cnf.Formula.add_clause f (Cnf.Clause.of_list [ L.pos 0; L.pos 1 ]) in
  match Sat.Enumerate.models ~limit:10 f with
  | ms, false -> check_int "stopped at limit" 10 (List.length ms)
  | _, true -> Alcotest.fail "limit should bind"

let test_enumerate_exact_boundary () =
  let f = formula_of (2, [ [ 1; -1 ] ]) in
  (* below the model count: incomplete by construction *)
  (match Sat.Enumerate.models ~limit:3 f with
  | ms, complete ->
      check_int "three found" 3 (List.length ms);
      check "not complete" false complete);
  (* above the model count: complete *)
  match Sat.Enumerate.models ~limit:5 f with
  | ms, complete ->
      check_int "all four" 4 (List.length ms);
      check "certified complete" true complete

let test_enumerate_projection () =
  (* x0 free, x1 constrained equal to x2: projecting on {1,2} gives 2 *)
  let f =
    formula_of (3, [ [ -2; 3 ]; [ 2; -3 ] ])
  in
  check "projected" true (Sat.Enumerate.count ~relevant:[ 1; 2 ] f = Some 2);
  check "unprojected" true (Sat.Enumerate.count f = Some 4)

let test_enumerate_unsat () =
  let f = formula_of (1, [ [ 1 ]; [ -1 ] ]) in
  check "no models" true (Sat.Enumerate.count f = Some 0)

let prop_enumeration_matches_brute_force =
  QCheck.Test.make ~name:"enumeration count = brute force count" ~count:200 arb_cnf
    (fun (nvars, cls) ->
      let f = formula_of (nvars, cls) in
      (* nvars <= 10, so 2048 strictly exceeds the maximum model count *)
      Sat.Enumerate.count ~limit:2048 f = Some (Cnf.Formula.brute_force_count f))

let prop_driver_preserves_projected_count =
  (* Section V via enumeration: the processed CNF of the driver has exactly
     the original formula's models when projected to the original
     variables *)
  QCheck.Test.make ~name:"bosphorus preserves projected model count" ~count:60 arb_cnf
    (fun (nvars, cls) ->
      let f = formula_of (nvars, cls) in
      let config =
        { Bosphorus.Config.default with Bosphorus.Config.stop_on_solution = false }
      in
      let outcome = Bosphorus.Driver.run_cnf ~config f in
      match outcome.Bosphorus.Driver.status with
      | Bosphorus.Driver.Solved_unsat -> Cnf.Formula.brute_force_count f = 0
      | Bosphorus.Driver.Solved_sat _ | Bosphorus.Driver.Processed
      | Bosphorus.Driver.Degraded ->
          let augmented = Bosphorus.Driver.augmented_cnf f outcome in
          let relevant = List.init (Cnf.Formula.nvars f) Fun.id in
          Sat.Enumerate.count ~limit:4096 ~relevant augmented
          = Some (Cnf.Formula.brute_force_count f))

let enumerate_suite =
  [
    ( "sat.enumerate",
      [
        Alcotest.test_case "simple" `Quick test_enumerate_simple;
        Alcotest.test_case "limit" `Quick test_enumerate_limit;
        Alcotest.test_case "exact boundary" `Quick test_enumerate_exact_boundary;
        Alcotest.test_case "projection" `Quick test_enumerate_projection;
        Alcotest.test_case "unsat" `Quick test_enumerate_unsat;
        QCheck_alcotest.to_alcotest prop_enumeration_matches_brute_force;
        QCheck_alcotest.to_alcotest prop_driver_preserves_projected_count;
      ] );
  ]

let proof_suite =
  [
    ( "sat.proof",
      [
        Alcotest.test_case "simple unsat certificate" `Quick test_proof_simple_unsat;
        Alcotest.test_case "pigeonhole certificates" `Quick test_proof_pigeonhole;
        Alcotest.test_case "bogus certificates rejected" `Quick test_proof_rejects_bogus;
        Alcotest.test_case "is_rup" `Quick test_proof_is_rup_direct;
        Alcotest.test_case "is_rup edge cases" `Quick test_proof_is_rup_edge_cases;
        Alcotest.test_case "check requires empty clause" `Quick
          test_proof_check_requires_empty_clause;
        Alcotest.test_case "invariant_violations healthy" `Quick
          test_invariant_violations_healthy;
        QCheck_alcotest.to_alcotest prop_unsat_proofs_verify;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Domain safety: solver instances share no mutable module state, so     *)
(* distinct instances may run on distinct domains concurrently (the      *)
(* bench driver's --jobs batching relies on this).                       *)
(* ------------------------------------------------------------------ *)

let test_concurrent_solver_instances () =
  let rng () = Random.State.make [| 5 |] in
  let formulas =
    [
      Problems.Generators.pigeonhole ~holes:4;
      Problems.Generators.parity_chain ~vertices:12 ~satisfiable:true ~rng:(rng ());
      Problems.Generators.parity_chain ~vertices:12 ~satisfiable:false ~rng:(rng ());
      Problems.Generators.random_ksat ~nvars:30 ~n_clauses:100 ~k:3 ~rng:(rng ());
      Problems.Generators.pigeonhole ~holes:3;
      Problems.Generators.random_ksat ~nvars:20 ~n_clauses:60 ~k:3 ~rng:(rng ());
    ]
  in
  let solve f =
    let s = S.create ~nvars:(Cnf.Formula.nvars f) () in
    ignore (S.add_formula s f);
    match S.solve s with
    | Sat.Types.Sat _ -> `Sat
    | Sat.Types.Unsat -> `Unsat
    | Sat.Types.Undecided -> `Undecided
  in
  let sequential = List.map solve formulas in
  Runtime.Pool.with_pool ~jobs:4 (fun pool ->
      (* several rounds so every worker domain touches several instances *)
      for round = 1 to 3 do
        let parallel = Runtime.Pool.map_list pool solve formulas in
        check (Printf.sprintf "round %d matches sequential" round) true
          (List.for_all2 ( = ) sequential parallel)
      done)

let concurrency_suite =
  [
    ( "sat.concurrency",
      [ Alcotest.test_case "4-way concurrent solver instances" `Quick
          test_concurrent_solver_instances ] );
  ]

(* ------------------------------------------------------------------ *)
(* Clause arena: lazy detach, compaction, and equivalence               *)
(* ------------------------------------------------------------------ *)

(* Regression: reduce_db must not walk watch lists to detach the clauses
   it deletes.  Construction: a formula large enough that the marked
   learnts stay under the compaction threshold (problem words dominate),
   so the deleted clauses remain on watch lists and are only dropped
   lazily when propagation next visits them. *)
let test_lazy_detach_no_watch_rescan () =
  let rng = Random.State.make [| 42 |] in
  let f = Problems.Generators.random_ksat ~nvars:600 ~n_clauses:2560 ~k:3 ~rng in
  let s = S.create ~nvars:(Cnf.Formula.nvars f) () in
  ignore (S.add_formula s f);
  (match S.solve ~conflict_budget:150 s with
  | Sat.Types.Undecided -> ()
  | Sat.Types.Sat _ | Sat.Types.Unsat ->
      Alcotest.fail "instance decided inside warm-up budget; regression setup broken");
  let st = S.stats s in
  let gcs_before = st.Sat.Types.arena_gcs in
  let drops_before = st.Sat.Types.lazy_detach_drops in
  let live_before = S.n_live_learnts s in
  S.reduce_learnts s;
  check "reduce_db marked learnts" true (S.n_live_learnts s < live_before);
  check "marked clauses merely counted as waste" true (S.arena_wasted_words s > 0);
  check_int "no compaction triggered (learnt words stay under threshold)" gcs_before
    st.Sat.Types.arena_gcs;
  check_int "reduce_db itself touches no watch list" drops_before
    st.Sat.Types.lazy_detach_drops;
  Alcotest.(check (list string)) "stale watchers are a legal state" []
    (S.invariant_violations s);
  (* continued search must shed the stale watchers during propagation *)
  ignore (S.solve ~conflict_budget:2000 s);
  check "propagation lazily dropped deleted watchers" true
    (st.Sat.Types.lazy_detach_drops > drops_before);
  Alcotest.(check (list string)) "invariants hold after lazy drops" []
    (S.invariant_violations s)

let test_compact_mid_search_preserves_verdict () =
  let rng = Random.State.make [| 7 |] in
  let f = Problems.Generators.parity_chain ~vertices:20 ~satisfiable:false ~rng in
  let s = S.create ~nvars:(Cnf.Formula.nvars f) () in
  ignore (S.add_formula s f);
  let rec go budget_rounds =
    match S.solve ~conflict_budget:60 s with
    | Sat.Types.Undecided when budget_rounds > 0 ->
        S.reduce_learnts s;
        S.compact s;
        check_int "compaction leaves no waste" 0 (S.arena_wasted_words s);
        Alcotest.(check (list string)) "invariants hold after compaction" []
          (S.invariant_violations s);
        go (budget_rounds - 1)
    | r -> r
  in
  check "unsat survives repeated mid-search compaction" true (is_unsat (go 200));
  check "at least one compaction actually ran" true
    ((S.stats s).Sat.Types.arena_gcs > 0)

let prop_reduce_compact_matches_brute_force =
  QCheck.Test.make
    ~name:"verdicts and models unchanged by reduce_db + compaction" ~count:200 arb_cnf
    (fun (nvars, cls) ->
      let f = formula_of (nvars, cls) in
      let expected = Cnf.Formula.brute_force_sat f in
      let s = solver_of_dimacs_clauses ~nvars cls in
      (* squeeze the search through many tiny budgets, reducing and
         compacting between every slice *)
      let rec go n =
        match S.solve ~conflict_budget:3 s with
        | Sat.Types.Undecided when n > 0 ->
            S.reduce_learnts s;
            S.compact s;
            go (n - 1)
        | r -> r
      in
      match (expected, go 5000) with
      | Some true, Sat.Types.Sat model -> Cnf.Formula.eval (fun v -> model.(v)) f
      | Some false, Sat.Types.Unsat -> true
      | _, _ -> false)

(* RUP certificates must survive arena compaction: the proof log indexes
   literals, not clause offsets, so moving every clause mid-search cannot
   invalidate the replay. *)
let test_proof_survives_compaction () =
  let f = Problems.Generators.pigeonhole ~holes:4 in
  let s = S.create ~nvars:(Cnf.Formula.nvars f) () in
  S.enable_proof s;
  ignore (S.add_formula s f);
  let rec go n =
    match S.solve ~conflict_budget:25 s with
    | Sat.Types.Undecided when n > 0 ->
        S.reduce_learnts s;
        S.compact s;
        go (n - 1)
    | r -> r
  in
  check "pigeonhole unsat" true (is_unsat (go 1000));
  check "compaction happened during the proof" true
    ((S.stats s).Sat.Types.arena_gcs > 0);
  check "certificate still replays" true (Sat.Proof.check f (S.proof s))

let arena_suite =
  [
    ( "sat.arena",
      [
        Alcotest.test_case "reduce_db does not rescan watch lists" `Quick
          test_lazy_detach_no_watch_rescan;
        Alcotest.test_case "compaction mid-search preserves verdict" `Quick
          test_compact_mid_search_preserves_verdict;
        Alcotest.test_case "proof survives compaction" `Quick
          test_proof_survives_compaction;
        QCheck_alcotest.to_alcotest prop_reduce_compact_matches_brute_force;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Off-heap stores: Bigarray-backed Ivec/Arena vs reference models,     *)
(* and the zero-allocation BCP regression check.                        *)
(* ------------------------------------------------------------------ *)

(* Random op traffic against a plain int-array model: the Bigarray
   rewrite must be observationally identical to the boxed-array vector
   it replaced. *)
let test_ivec_model () =
  let rng = Random.State.make [| 91 |] in
  let v = Sat.Ivec.create ~cap:2 () in
  let model = ref [||] in
  let append xs x = Array.append xs [| x |] in
  for step = 1 to 3_000 do
    let n = Array.length !model in
    (match Random.State.int rng 8 with
    | 0 | 1 ->
        let x = Random.State.int rng 1000 - 500 in
        Sat.Ivec.push v x;
        model := append !model x
    | 2 ->
        let x = Random.State.int rng 1000 and y = Random.State.int rng 1000 in
        Sat.Ivec.push2 v x y;
        model := append (append !model x) y
    | 3 when n > 0 ->
        let i = Random.State.int rng n in
        let x = Random.State.int rng 1000 in
        Sat.Ivec.set v i x;
        !model.(i) <- x
    | 4 when n > 0 ->
        let k = Random.State.int rng (n + 1) in
        Sat.Ivec.shrink v k;
        model := Array.sub !model 0 k
    | 5 ->
        let keep x = x land 1 = 0 in
        Sat.Ivec.filter_in_place keep v;
        model := Array.of_list (List.filter keep (Array.to_list !model))
    | 6 ->
        Sat.Ivec.sort_in_place Int.compare v;
        let xs = Array.copy !model in
        Array.sort Int.compare xs;
        model := xs
    | _ when n > 0 ->
        let i = Random.State.int rng n in
        check_int (Printf.sprintf "step %d get %d" step i) !model.(i) (Sat.Ivec.get v i)
    | _ -> ());
    check_int (Printf.sprintf "step %d size" step) (Array.length !model)
      (Sat.Ivec.size v)
  done;
  Alcotest.(check (list int)) "final contents" (Array.to_list !model)
    (Sat.Ivec.to_list v)

(* Arena vs a reference model of clause records: random allocation
   (array-based and blank/in-place), flag and metadata traffic, then a
   full move-based compaction with forward remapping. *)
let test_arena_model () =
  let rng = Random.State.make [| 92 |] in
  let a = Sat.Arena.create ~cap:16 () in
  (* model: (cref, lits array, learnt, temp, deleted ref, lbd ref, act ref) *)
  let model = ref [] in
  for _ = 1 to 400 do
    let n = Random.State.int rng 9 in
    let lits = Array.init n (fun _ -> Random.State.int rng 1000) in
    let learnt = Random.State.bool rng and temp = Random.State.bool rng in
    let c =
      if Random.State.bool rng then Sat.Arena.alloc a ~learnt ~temp lits
      else begin
        let c = Sat.Arena.alloc_blank a ~learnt ~temp n in
        Array.iteri (fun i x -> Sat.Arena.set_lit a c i x) lits;
        c
      end
    in
    let lbd = Random.State.int rng 30 in
    Sat.Arena.set_lbd a c lbd;
    let act = float_of_int (Random.State.int rng 1000) in
    Sat.Arena.set_activity a c act;
    let deleted =
      if Random.State.int rng 4 = 0 then begin
        Sat.Arena.mark_deleted a c;
        true
      end
      else false
    in
    model := (c, lits, learnt, temp, deleted, lbd, act) :: !model
  done;
  let check_clause arena (c, lits, learnt, temp, deleted, lbd, act) =
    check_int "n_lits" (Array.length lits) (Sat.Arena.n_lits arena c);
    Alcotest.(check (array int)) "lits" lits (Sat.Arena.lits_array arena c);
    check "learnt" learnt (Sat.Arena.learnt arena c);
    check "temp" temp (Sat.Arena.is_temp arena c);
    check "deleted" deleted (Sat.Arena.is_deleted arena c);
    check_int "lbd" lbd (Sat.Arena.lbd arena c);
    Alcotest.(check (float 0.0)) "activity" act (Sat.Arena.activity arena c)
  in
  List.iter (check_clause a) !model;
  (* compact the live clauses into a fresh arena; contents survive the
     move (deletion marks clear by design) and forwarding is stable *)
  let into = Sat.Arena.create () in
  let live = List.filter (fun (_, _, _, _, d, _, _) -> not d) !model in
  let moved =
    List.map
      (fun ((c, lits, learnt, temp, _, lbd, act) as _cl) ->
        let c' = Sat.Arena.move a ~into c in
        check "forwarded" true (Sat.Arena.forwarded a c);
        check_int "forward is stable" c' (Sat.Arena.forward a c);
        check_int "move twice returns same ref" c' (Sat.Arena.move a ~into c);
        (c', lits, learnt, temp, false, lbd, act))
      live
  in
  List.iter (check_clause into) moved

(* The tentpole regression: once the solver's stores have reached steady
   state, redoing an implication chain allocates exactly zero minor-heap
   words — no closures, boxes, or scratch rebuilt per propagation.
   [Gc.minor_words] itself boxes its float result, so the measurement's
   own overhead is measured first and subtracted. *)
let test_burst_propagate_zero_alloc () =
  let n = 120 in
  let s = S.create ~nvars:n () in
  for i = 0 to n - 2 do
    ignore
      (S.add_clause s
         [ L.make i ~negated:true; L.make (i + 1) ~negated:false ])
  done;
  let l0 = L.make 0 ~negated:false in
  ignore (S.burst_propagate s l0 ~reps:10);
  let a = Gc.minor_words () in
  let b = Gc.minor_words () in
  let overhead = b -. a in
  let w0 = Gc.minor_words () in
  let assigned = S.burst_propagate s l0 ~reps:500 in
  let extra = Gc.minor_words () -. w0 -. overhead in
  check_int "whole chain assigned every rep" (500 * n) assigned;
  Alcotest.(check (float 0.0)) "zero minor words across the burst" 0.0 extra

let offheap_suite =
  [
    ( "sat.offheap",
      [
        Alcotest.test_case "Ivec = int-array model" `Quick test_ivec_model;
        Alcotest.test_case "Arena = clause-record model" `Quick test_arena_model;
        Alcotest.test_case "steady-state BCP allocates zero words" `Quick
          test_burst_propagate_zero_alloc;
      ] );
  ]

let suite =
  main_suite @ probe_suite @ enumerate_suite @ proof_suite @ concurrency_suite
  @ arena_suite @ offheap_suite
