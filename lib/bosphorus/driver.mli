(** The Bosphorus workflow (Fig. 1): an XL – ElimLin – SAT-solver
    fact-learning loop over a master ANF, with ANF propagation applied to
    the input and after every batch of learnt facts, run to the fixed point
    at which no new facts are produced.

    The master system is the only mutable copy; each technique works on a
    snapshot and its learnt facts are added to the master if not already
    present (Section III-A).  If the equation 1 = 0 appears the run stops
    with [`Unsat]; if the SAT solver finds a satisfying assignment the
    solution is recorded (and, under [Config.stop_on_solution], the loop
    exits). *)

type status =
  | Solved_sat of (int * bool) list
      (** assignment to the original ANF variables found by the SAT step *)
  | Solved_unsat  (** 1 = 0 derived (by ANF techniques or the SAT solver) *)
  | Processed  (** fixed point reached without deciding the instance *)
  | Degraded
      (** a resource budget ({!Config.t.timeout_s},
          [max_memory_monomials], [max_total_conflicts], or an injected
          fault) tripped before the fixed point: the outcome still
          carries every fact learnt up to the trip — all sound — and
          [budget_report] says what tripped, in which layer, at which
          iteration *)

(** Per-SAT-round encoding and search counters.  Under
    {!Config.t.incremental_sat}, [round_encoded]/[round_reused] count the
    polynomials newly encoded vs skipped as already encoded — an
    iteration that changed nothing shows [round_encoded = 0] — and the
    propagation/conflict counters are deltas for that round. *)
type round_info = {
  round_encoded : int;
  round_reused : int;
  round_delta_clauses : int;  (** clauses emitted (and fed to the solver) this round *)
  round_propagations : int;
  round_conflicts : int;
}

type outcome = {
  status : status;
  anf : Anf.Poly.t list;
      (** processed ANF: normalised master system plus the value and
          equivalence facts *)
  cnf : Cnf.Formula.t;  (** CNF of the processed ANF (learnt facts included) *)
  facts : Facts.t;
  iterations : int;  (** loop iterations executed *)
  sat_calls : int;
  sat_rounds : round_info list;  (** one entry per SAT stage, in order *)
  trail : Audit_trail.t option;
      (** evidence for post-hoc fact certification, recorded when
          {!Config.t.audit_trail} is set (see {!Audit_trail}) *)
  budget_report : Harness.Budget.report option;
      (** resource accounting for the run, present whenever a budget
          ceiling was configured or a trip occurred (fault injection can
          trip an otherwise unlimited run); [None] for an unbounded,
          untripped run *)
}

(** [run ?config polys] preprocesses the ANF system [polys]. *)
val run : ?config:Config.t -> Anf.Poly.t list -> outcome

(** [run_cnf ?config ?xors f] uses Bosphorus as a CNF preprocessor
    (Section III-D): convert to ANF with clause cutting, learn, and return
    the processed result.  [xors] are native XOR constraints (e.g. from an
    XOR-extended DIMACS file, {!Cnf.Dimacs.parse_file_extended}); they join
    the ANF directly as linear polynomials — the encoding they were
    invented to avoid.  Per the paper, callers should solve the original
    CNF conjoined with the fact clauses; {!augmented_cnf} builds exactly
    that. *)
val run_cnf : ?config:Config.t -> ?xors:(int list * bool) list -> Cnf.Formula.t -> outcome

(** [augmented_cnf f outcome] is the original formula [f] strengthened with
    the learnt facts of [outcome] (facts over original CNF variables only),
    the paper's recommended output for the CNF use-case. *)
val augmented_cnf : Cnf.Formula.t -> outcome -> Cnf.Formula.t

(** Per-technique stage toggles used by the ablation benchmarks.
    [use_groebner] enables the Section-V extension (degree-bounded
    Buchberger, {!Groebner}); it is off in {!all_stages}, which matches the
    paper's tool. *)
type stages = {
  use_xl : bool;
  use_elimlin : bool;
  use_sat : bool;
  use_groebner : bool;
}

val all_stages : stages

(** [run_with_stages ?config ~stages polys] is {!run} with techniques
    disabled per [stages]. *)
val run_with_stages : ?config:Config.t -> stages:stages -> Anf.Poly.t list -> outcome
