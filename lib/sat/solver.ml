open Types

type config = {
  var_decay : float;
  clause_decay : float;
  restart_first : int;
  use_luby : bool;
  restart_inc : float;
  learntsize_factor : float;
  learntsize_inc : float;
  minimise_learnts : bool;
}

let default_config =
  {
    var_decay = 0.95;
    clause_decay = 0.999;
    restart_first = 100;
    use_luby = true;
    restart_inc = 2.0;
    learntsize_factor = 1.0 /. 3.0;
    learntsize_inc = 1.1;
    minimise_learnts = true;
  }

(* Clauses live in a flat {!Arena} and are addressed by word offsets
   ([Arena.cref]); watcher lists are flat (cref, blocker) int pairs in
   {!Ivec}s, and reason references are crefs.  Deleted clauses keep their
   watchers until propagation visits them (lazy detach) — the arena is
   compacted, with a full watch rebuild, once a quarter of it is dead. *)

(* Native XOR constraint: vars.(0) (+) ... (+) vars.(n-1) = parity, watched
   on two positions (w0, w1) like clause literals — the in-search XOR
   propagation of CryptoMiniSat-style solvers. *)
type xor_row = {
  vars : int array;
  parity : bool;
  mutable w0 : int; (* index into vars *)
  mutable w1 : int;
}

(* Variable assignments are stored as int codes so that the value of a
   literal is one xor away from the value of its variable — no variant
   matching on the propagation hot path. *)
let code_true = 0

let code_false = 1
let code_unknown = 2

type t = {
  config : config;
  mutable nvars : int;
  mutable arena : Arena.t;
  clauses : Ivec.t; (* problem clause crefs *)
  learnts : Ivec.t; (* learnt clause crefs (live only) *)
  binlog : Ivec.t; (* grow-only log of learnt binaries, packed lit pairs *)
  mutable watches : Ivec.t array; (* literal -> (cref, blocker) pairs *)
  mutable assigns : int array; (* variable -> code_true/false/unknown *)
  mutable phase : bool array; (* saved phase per variable *)
  mutable activity : float array;
  mutable reason : int array; (* variable -> cref or Arena.none *)
  mutable level : int array;
  mutable trail : int array;
  mutable trail_size : int;
  trail_lim : Ivec.t; (* trail index at each decision level *)
  mutable qhead : int;
  mutable heap : Var_heap.t;
  mutable ok : bool;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable seen : bool array;
  mutable max_learnts : float;
  mutable xor_watches : xor_row list array; (* indexed by variable *)
  mutable n_xors : int;
  mutable proof_enabled : bool;
  mutable proof_log : int array list; (* reversed; packed literals *)
  stats : stats;
}

let lit_var p = p lsr 1
let lit_neg p = p lxor 1

let create ?(config = default_config) ~nvars () =
  if nvars < 0 then invalid_arg "Solver.create";
  let n = Int.max nvars 1 in
  let activity = Array.make n 0.0 in
  let t =
    {
      config;
      nvars;
      arena = Arena.create ();
      clauses = Ivec.create ();
      learnts = Ivec.create ();
      binlog = Ivec.create ();
      watches = Array.init (2 * n) (fun _ -> Ivec.create ());
      assigns = Array.make n code_unknown;
      phase = Array.make n false;
      activity;
      reason = Array.make n Arena.none;
      level = Array.make n 0;
      trail = Array.make n 0;
      trail_size = 0;
      trail_lim = Ivec.create ();
      qhead = 0;
      heap = Var_heap.create n activity;
      ok = true;
      var_inc = 1.0;
      cla_inc = 1.0;
      seen = Array.make n false;
      max_learnts = 1000.0;
      xor_watches = Array.make n [];
      n_xors = 0;
      proof_enabled = false;
      proof_log = [];
      stats = fresh_stats ();
    }
  in
  for v = 0 to nvars - 1 do
    Var_heap.insert t.heap v
  done;
  t

let nvars t = t.nvars

let grow_arrays t cap =
  let old = Array.length t.assigns in
  if cap > old then begin
    let n = Int.max cap (2 * old) in
    let copy_arr make blit_src =
      let a = make n in
      blit_src a;
      a
    in
    t.assigns <-
      copy_arr (fun n -> Array.make n code_unknown) (fun a -> Array.blit t.assigns 0 a 0 old);
    t.phase <- copy_arr (fun n -> Array.make n false) (fun a -> Array.blit t.phase 0 a 0 old);
    t.activity <- copy_arr (fun n -> Array.make n 0.0) (fun a -> Array.blit t.activity 0 a 0 old);
    t.reason <-
      copy_arr (fun n -> Array.make n Arena.none) (fun a -> Array.blit t.reason 0 a 0 old);
    t.level <- copy_arr (fun n -> Array.make n 0) (fun a -> Array.blit t.level 0 a 0 old);
    t.trail <- copy_arr (fun n -> Array.make n 0) (fun a -> Array.blit t.trail 0 a 0 old);
    t.seen <- copy_arr (fun n -> Array.make n false) (fun a -> Array.blit t.seen 0 a 0 old);
    let watches = Array.init (2 * n) (fun i ->
        if i < 2 * old then t.watches.(i) else Ivec.create ())
    in
    t.watches <- watches;
    let xor_watches = Array.make n [] in
    Array.blit t.xor_watches 0 xor_watches 0 old;
    t.xor_watches <- xor_watches;
    t.heap <- Var_heap.grow t.heap n t.activity
  end

let new_var t =
  let v = t.nvars in
  grow_arrays t (v + 1);
  t.nvars <- v + 1;
  Var_heap.insert t.heap v;
  v

let lbool_of_code c = if c = code_true then True else if c = code_false then False else Unknown

let var_value t v = lbool_of_code t.assigns.(v)

(* 0 = true, 1 = false, 2 = unknown *)
let lit_code t p =
  let a = Array.unsafe_get t.assigns (p lsr 1) in
  if a = code_unknown then code_unknown else a lxor (p land 1)

let decision_level t = Ivec.size t.trail_lim

(* ---------------- proof logging ---------------- *)

let enable_proof t = t.proof_enabled <- true

let log_derived t lits = if t.proof_enabled then t.proof_log <- lits :: t.proof_log

let mark_unsat t =
  t.ok <- false;
  log_derived t [||]

let proof t =
  List.rev_map
    (fun lits -> Array.to_list (Array.map Cnf.Lit.of_index lits))
    t.proof_log

(* ---------------- activity ---------------- *)

let var_rescale = 1e100

let bump_var t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > var_rescale then begin
    for i = 0 to t.nvars - 1 do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  Var_heap.update t.heap v

let decay_var_activity t = t.var_inc <- t.var_inc /. t.config.var_decay

let bump_clause t c =
  let a = t.arena in
  Arena.set_activity a c (Arena.activity a c +. t.cla_inc);
  if Arena.activity a c > 1e20 then begin
    Ivec.iter (fun c -> Arena.set_activity a c (Arena.activity a c *. 1e-20)) t.learnts;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let decay_clause_activity t = t.cla_inc <- t.cla_inc /. t.config.clause_decay

(* ---------------- assignment ---------------- *)

let enqueue t p reason =
  let v = lit_var p in
  assert (t.assigns.(v) = code_unknown);
  t.assigns.(v) <- p land 1;
  (* code_true for a positive literal *)
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  t.trail.(t.trail_size) <- p;
  t.trail_size <- t.trail_size + 1

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = Ivec.get t.trail_lim lvl in
    for i = t.trail_size - 1 downto bound do
      let p = t.trail.(i) in
      let v = lit_var p in
      t.phase.(v) <- t.assigns.(v) = code_true;
      t.assigns.(v) <- code_unknown;
      let r = t.reason.(v) in
      if r <> Arena.none && Arena.is_temp t.arena r then
        (* transient XOR reason clauses die with their assignment *)
        Arena.mark_deleted t.arena r;
      t.reason.(v) <- Arena.none;
      Var_heap.insert t.heap v
    done;
    t.trail_size <- bound;
    t.qhead <- bound;
    Ivec.shrink t.trail_lim lvl
  end

(* ---------------- watches / clause attachment ---------------- *)

let attach t c =
  let a = t.arena in
  assert (Arena.n_lits a c >= 2);
  (* the clause is found when one of its first two literals becomes false,
     i.e. when the negation of that literal is assigned true *)
  let l0 = Arena.lit a c 0 and l1 = Arena.lit a c 1 in
  Ivec.push2 t.watches.(lit_neg l0) c l1;
  Ivec.push2 t.watches.(lit_neg l1) c l0

let locked t c =
  let a = t.arena in
  Arena.n_lits a c > 0
  &&
  let p = Arena.lit a c 0 in
  t.reason.(lit_var p) = c && lit_code t p = code_true

(* ---------------- native XOR constraints ---------------- *)

let var_bool t v = t.assigns.(v) = code_true

(* Reason/conflict clause for an XOR row under the current assignment: the
   currently-false literal of every assigned variable, with the implied
   literal (if any) in front, as conflict analysis expects.  The clause is
   allocated in the arena as a temporary — never attached, reclaimed when
   its assignment is undone (or, for conflicts, right after analysis). *)
let xor_clause t row ~implied =
  let lits = ref [] in
  Array.iter
    (fun v ->
      match implied with
      | Some (iv, _) when iv = v -> ()
      | Some _ | None ->
          (* literal with sign = current value is false right now *)
          lits := ((2 * v) + if var_bool t v then 1 else 0) :: !lits)
    row.vars;
  let lits =
    match implied with
    | Some (iv, b) -> ((2 * iv) + if b then 0 else 1) :: !lits
    | None -> !lits
  in
  Arena.alloc_list t.arena ~learnt:false ~temp:true lits

(* Process the XOR rows watching variable [v], which was just assigned.
   Mirrors clause watching: find a replacement unassigned watch, otherwise
   the row is unit (imply the other watch) or fully assigned (check
   parity).  Returns the conflicting virtual clause's cref, if any. *)
let propagate_xor t v =
  let conflict = ref Arena.none in
  let rows = t.xor_watches.(v) in
  t.xor_watches.(v) <- [];
  let rec process = function
    | [] -> ()
    | row :: rest -> (
        let n = Array.length row.vars in
        let my_w = if row.vars.(row.w0) = v then `W0 else `W1 in
        let other_w = match my_w with `W0 -> row.w1 | `W1 -> row.w0 in
        (* look for an unassigned replacement watch *)
        let rec find k =
          if k >= n then None
          else if
            k <> row.w0 && k <> row.w1 && t.assigns.(row.vars.(k)) = code_unknown
          then Some k
          else find (k + 1)
        in
        match find 0 with
        | Some k ->
            (match my_w with `W0 -> row.w0 <- k | `W1 -> row.w1 <- k);
            let w = row.vars.(k) in
            t.xor_watches.(w) <- row :: t.xor_watches.(w);
            process rest
        | None ->
            (* keep watching v *)
            t.xor_watches.(v) <- row :: t.xor_watches.(v);
            let ov = row.vars.(other_w) in
            if t.assigns.(ov) = code_unknown then begin
              (* unit: the other watch is implied *)
              let acc = ref row.parity in
              Array.iter (fun x -> if x <> ov && var_bool t x then acc := not !acc) row.vars;
              let reason = xor_clause t row ~implied:(Some (ov, !acc)) in
              enqueue t ((2 * ov) + if !acc then 0 else 1) reason;
              process rest
            end
            else begin
              (* fully assigned: verify the parity *)
              let acc = ref false in
              Array.iter (fun x -> if var_bool t x then acc := not !acc) row.vars;
              if !acc <> row.parity then begin
                conflict := xor_clause t row ~implied:None;
                List.iter
                  (fun r -> t.xor_watches.(v) <- r :: t.xor_watches.(v))
                  rest
              end
              else process rest
            end)
  in
  process rows;
  !conflict

(* ---------------- propagation ---------------- *)

(* Two-watched-literal Boolean constraint propagation over the flat arena.
   Returns the conflicting clause's cref, or [Arena.none].  Watchers of
   deleted clauses are dropped here (lazy detach) instead of being scanned
   out eagerly at deletion time. *)
let propagate t =
  let conflict = ref Arena.none in
  while !conflict = Arena.none && t.qhead < t.trail_size do
    let p = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    t.stats.propagations <- t.stats.propagations + 1;
    (* p became true; clauses registered under p watch a literal that just
       became false.  The watcher pairs are compacted in place: [i] scans,
       [j] writes back the watchers that stay. *)
    let ws = t.watches.(p) in
    let a = t.arena in
    let false_lit = lit_neg p in
    let n_ws = Ivec.size ws in
    let i = ref 0 and j = ref 0 in
    let keep c blocker =
      Ivec.unsafe_set ws !j c;
      Ivec.unsafe_set ws (!j + 1) blocker;
      j := !j + 2
    in
    while !i < n_ws do
      let c = Ivec.unsafe_get ws !i in
      let blocker = Ivec.unsafe_get ws (!i + 1) in
      i := !i + 2;
      if lit_code t blocker = code_true then keep c blocker
      else if Arena.is_deleted a c then
        (* lazy detach: simply drop the watcher *)
        t.stats.lazy_detach_drops <- t.stats.lazy_detach_drops + 1
      else begin
        (* normalise: the false watch goes to position 1 *)
        if Arena.lit a c 0 = false_lit then begin
          Arena.set_lit a c 0 (Arena.lit a c 1);
          Arena.set_lit a c 1 false_lit
        end;
        let first = Arena.lit a c 0 in
        if first <> blocker && lit_code t first = code_true then
          (* satisfied; keep watching with a better blocker *)
          keep c first
        else begin
          (* look for a new literal to watch *)
          let n = Arena.n_lits a c in
          let rec find k =
            if k >= n then -1
            else if lit_code t (Arena.lit a c k) <> code_false then k
            else find (k + 1)
          in
          let k = find 2 in
          if k >= 0 then begin
            let lk = Arena.lit a c k in
            Arena.set_lit a c k false_lit;
            Arena.set_lit a c 1 lk;
            Ivec.push2 t.watches.(lit_neg lk) c first
          end
          else begin
            (* unit or conflicting; keep this watcher *)
            keep c first;
            if lit_code t first = code_false then begin
              conflict := c;
              t.qhead <- t.trail_size;
              (* keep the unexamined watchers *)
              while !i < n_ws do
                keep (Ivec.unsafe_get ws !i) (Ivec.unsafe_get ws (!i + 1));
                i := !i + 2
              done
            end
            else enqueue t first c
          end
        end
      end
    done;
    Ivec.shrink ws !j;
    if !conflict = Arena.none && t.n_xors > 0 then begin
      let c = propagate_xor t (lit_var p) in
      if c <> Arena.none then begin
        conflict := c;
        t.qhead <- t.trail_size
      end
    end
  done;
  !conflict

(* ---------------- conflict analysis (first UIP) ---------------- *)

(* Recursive learnt-clause minimisation (MiniSat's deep litRedundant): a
   literal is redundant if, walking its implication ancestry, every branch
   terminates in a literal already in the clause (seen) or at level 0.
   Results are memoised per call; a depth cap bounds pathological graphs
   (failing the cap just keeps the literal, which is always sound). *)
let literal_redundant t q =
  let memo : (int, bool) Hashtbl.t = Hashtbl.create 16 in
  let a = t.arena in
  let rec redundant depth q =
    depth <= 64
    &&
    let r = t.reason.(lit_var q) in
    r <> Arena.none
    &&
    let n = Arena.n_lits a r in
    let rec check i =
      i >= n
      ||
      let l = Arena.lit a r i in
      let v = lit_var l in
      (v = lit_var q || t.level.(v) = 0 || t.seen.(v)
      ||
      match Hashtbl.find_opt memo v with
      | Some b -> b
      | None ->
          let b = redundant (depth + 1) l in
          Hashtbl.replace memo v b;
          b)
      && check (i + 1)
    in
    check 0
  in
  redundant 0 q

let analyze t confl =
  let a = t.arena in
  let learnt = ref [] in
  let path_count = ref 0 in
  let p = ref (-1) in
  let index = ref (t.trail_size - 1) in
  let confl = ref confl in
  let to_clear = ref [] in
  let continue = ref true in
  while !continue do
    let c = !confl in
    if Arena.learnt a c then bump_clause t c;
    let start = if !p = -1 then 0 else 1 in
    for i = start to Arena.n_lits a c - 1 do
      let q = Arena.lit a c i in
      let v = lit_var q in
      if (not t.seen.(v)) && t.level.(v) > 0 then begin
        t.seen.(v) <- true;
        to_clear := v :: !to_clear;
        bump_var t v;
        if t.level.(v) >= decision_level t then incr path_count
        else learnt := q :: !learnt
      end
    done;
    (* next clause to inspect: walk the trail backwards to the most recent
       seen literal *)
    while not t.seen.(lit_var t.trail.(!index)) do
      decr index
    done;
    p := t.trail.(!index);
    decr index;
    t.seen.(lit_var !p) <- false;
    decr path_count;
    if !path_count <= 0 then continue := false
    else begin
      let r = t.reason.(lit_var !p) in
      assert (r <> Arena.none);
      (* only the UIP can lack a reason *)
      confl := r
    end
  done;
  let learnt =
    if t.config.minimise_learnts then
      List.filter (fun q -> not (literal_redundant t q)) !learnt
    else !learnt
  in
  let learnt = Array.of_list (lit_neg !p :: learnt) in
  (* compute backtrack level: highest level among learnt.(1..) *)
  let bt_level =
    if Array.length learnt = 1 then 0
    else begin
      let max_i = ref 1 in
      for i = 2 to Array.length learnt - 1 do
        if t.level.(lit_var learnt.(i)) > t.level.(lit_var learnt.(!max_i)) then max_i := i
      done;
      let tmp = learnt.(1) in
      learnt.(1) <- learnt.(!max_i);
      learnt.(!max_i) <- tmp;
      t.level.(lit_var learnt.(1))
    end
  in
  (* literal block distance: number of distinct decision levels *)
  let module Iset = Set.Make (Int) in
  let lbd =
    Array.fold_left (fun s q -> Iset.add t.level.(lit_var q) s) Iset.empty learnt
    |> Iset.cardinal
  in
  List.iter (fun v -> t.seen.(v) <- false) !to_clear;
  (learnt, bt_level, lbd)

(* ---------------- clause addition ---------------- *)

let add_clause_internal t lits =
  (* root-level simplification: drop false literals, succeed on true or
     duplicate-complement literals *)
  assert (decision_level t = 0);
  let lits = List.sort_uniq Int.compare lits in
  let tautology =
    let rec go = function
      | a :: (b :: _ as rest) -> (a = lit_neg b && lit_var a = lit_var b) || go rest
      | [ _ ] | [] -> false
    in
    go lits
  in
  if tautology then true
  else if List.exists (fun p -> lit_code t p = code_true) lits then true
  else begin
    let lits = List.filter (fun p -> lit_code t p <> code_false) lits in
    match lits with
    | [] ->
        mark_unsat t;
        false
    | [ p ] ->
        enqueue t p Arena.none;
        if propagate t <> Arena.none then begin
          mark_unsat t;
          false
        end
        else true
    | _ ->
        let c = Arena.alloc_list t.arena ~learnt:false ~temp:false lits in
        Ivec.push t.clauses c;
        attach t c;
        true
  end

let add_clause t lits =
  if not t.ok then false
  else begin
    let lits = List.map (fun l -> Cnf.Lit.to_index l) lits in
    List.iter (fun p -> grow_arrays t (lit_var p + 1)) lits;
    List.iter
      (fun p ->
        if lit_var p >= t.nvars then begin
          for v = t.nvars to lit_var p do
            Var_heap.insert t.heap v
          done;
          t.nvars <- lit_var p + 1
        end)
      lits;
    add_clause_internal t lits
  end

let add_formula t f =
  List.for_all (fun c -> add_clause t (Cnf.Clause.to_list c)) (Cnf.Formula.clauses f)

let add_xor t ~vars ~parity =
  if not t.ok then false
  else begin
    assert (decision_level t = 0);
    (* cancel duplicated variables (GF(2)) and fold root-level values *)
    let sorted = List.sort Int.compare vars in
    let rec dedup = function
      | a :: b :: rest when Int.equal a b -> dedup rest
      | a :: rest -> a :: dedup rest
      | [] -> []
    in
    let distinct = dedup sorted in
    List.iter (fun v -> grow_arrays t (v + 1)) distinct;
    List.iter
      (fun v ->
        if v >= t.nvars then begin
          for w = t.nvars to v do
            Var_heap.insert t.heap w
          done;
          t.nvars <- v + 1
        end)
      distinct;
    let parity, free =
      List.fold_left
        (fun (parity, free) v ->
          if t.assigns.(v) = code_unknown then (parity, v :: free)
          else if t.assigns.(v) = code_true then (not parity, free)
          else (parity, free))
        (parity, []) distinct
    in
    match free with
    | [] ->
        if parity then begin
          mark_unsat t;
          false
        end
        else true
    | [ v ] -> add_clause_internal t [ (2 * v) + if parity then 0 else 1 ]
    | _ :: _ :: _ ->
        let row = { vars = Array.of_list (List.rev free); parity; w0 = 0; w1 = 1 } in
        let a = row.vars.(0) and b = row.vars.(1) in
        t.xor_watches.(a) <- row :: t.xor_watches.(a);
        t.xor_watches.(b) <- row :: t.xor_watches.(b);
        t.n_xors <- t.n_xors + 1;
        true
  end

(* ---------------- arena compaction ---------------- *)

(* Mark-then-compact: copy every live clause into a fresh arena (leaving
   forwarding pointers behind), remap the clause-reference holders
   (problem/learnt vectors and reason slots, including transient XOR
   reasons), then rebuild all watch lists from scratch.  Stale watchers of
   deleted clauses vanish with the old lists — no per-deletion scan ever
   happens. *)
let compact t =
  Obs.Trace.with_span ~name:"sat.arena_gc" @@ fun () ->
  let old = t.arena in
  let into = Arena.create ~cap:(Arena.words old - Arena.wasted old + 16) () in
  let remap vec =
    for i = 0 to Ivec.size vec - 1 do
      Ivec.set vec i (Arena.move old ~into (Ivec.get vec i))
    done
  in
  remap t.clauses;
  remap t.learnts;
  for v = 0 to t.nvars - 1 do
    let r = t.reason.(v) in
    if r <> Arena.none then t.reason.(v) <- Arena.move old ~into r
  done;
  t.arena <- into;
  Array.iter Ivec.clear t.watches;
  Ivec.iter (fun c -> attach t c) t.clauses;
  Ivec.iter (fun c -> attach t c) t.learnts;
  t.stats.arena_gcs <- t.stats.arena_gcs + 1

let maybe_compact t =
  let a = t.arena in
  if Arena.words a > 4096 && 4 * Arena.wasted a > Arena.words a then compact t

(* ---------------- learnt DB reduction ---------------- *)

let reduce_db t =
  Obs.Trace.with_span ~name:"sat.reduce_db" @@ fun () ->
  let a = t.arena in
  (* order: worse clauses first (higher LBD, then lower activity) *)
  let cmp c1 c2 =
    let l1 = Arena.lbd a c1 and l2 = Arena.lbd a c2 in
    if l1 <> l2 then Int.compare l2 l1
    else Float.compare (Arena.activity a c1) (Arena.activity a c2)
  in
  Ivec.sort_in_place cmp t.learnts;
  let target = Ivec.size t.learnts / 2 in
  let removed = ref 0 in
  let keep c =
    if
      !removed < target
      && (not (locked t c))
      && Arena.n_lits a c > 2
      && Arena.lbd a c > 2
    then begin
      (* mark only: watchers are dropped lazily during propagation *)
      Arena.mark_deleted a c;
      t.stats.deleted_clauses <- t.stats.deleted_clauses + 1;
      incr removed;
      false
    end
    else true
  in
  Ivec.filter_in_place keep t.learnts;
  maybe_compact t

(* ---------------- restarts ---------------- *)

(* Luby restart sequence 1,1,2,1,1,2,4,... (MiniSat's formulation): find
   the finite subsequence containing index [x], then walk down. *)
let luby y x =
  let rec find size seq = if size < x + 1 then find ((2 * size) + 1) (seq + 1) else (size, seq) in
  let size, seq = find 1 0 in
  let rec walk size seq x =
    if size - 1 = x then y ** float_of_int seq
    else
      let size = (size - 1) / 2 in
      walk size (seq - 1) (x mod size)
  in
  walk size seq x

(* ---------------- search ---------------- *)

type search_outcome = Done of result | Restart

let record_learnt t learnt lbd =
  log_derived t (Array.copy learnt);
  match Array.length learnt with
  | 0 -> assert false
  | 1 -> enqueue t learnt.(0) Arena.none
  | n ->
      let c = Arena.alloc t.arena ~learnt:true ~temp:false learnt in
      Arena.set_lbd t.arena c lbd;
      Ivec.push t.learnts c;
      if n = 2 then Ivec.push2 t.binlog learnt.(0) learnt.(1);
      attach t c;
      bump_clause t c;
      t.stats.learnt_clauses <- t.stats.learnt_clauses + 1;
      enqueue t learnt.(0) c

let pick_branch_var t =
  let rec go () =
    if Var_heap.is_empty t.heap then None
    else
      let v = Var_heap.remove_max t.heap in
      if t.assigns.(v) = code_unknown then Some v else go ()
  in
  go ()

let model_of t =
  Array.init t.nvars (fun v ->
      if t.assigns.(v) = code_true then true
      else if t.assigns.(v) = code_false then false
      else t.phase.(v))

let search t ~restart_limit ~budget_left ~deadline ~interrupt =
  let conflicts_here = ref 0 in
  let outcome = ref None in
  let deadline_passed () =
    match deadline with
    | Some d when t.stats.conflicts land 255 = 0 -> Unix.gettimeofday () > d
    | Some _ | None -> false
  in
  let interrupted () =
    match interrupt with
    | Some f when t.stats.conflicts land 127 = 0 -> f ()
    | Some _ | None -> false
  in
  while Option.is_none !outcome do
    let confl = propagate t in
    if confl <> Arena.none then begin
      t.stats.conflicts <- t.stats.conflicts + 1;
      incr conflicts_here;
      if decision_level t = 0 then begin
        mark_unsat t;
        outcome := Some (Done Unsat)
      end
      else begin
        let learnt, bt_level, lbd = analyze t confl in
        if Arena.is_temp t.arena confl then Arena.mark_deleted t.arena confl;
        cancel_until t bt_level;
        record_learnt t learnt lbd;
        decay_var_activity t;
        decay_clause_activity t;
        match budget_left with
        | Some b when t.stats.conflicts >= b -> outcome := Some (Done Undecided)
        | Some _ | None ->
            if deadline_passed () || interrupted () then
              outcome := Some (Done Undecided)
            else if !conflicts_here >= restart_limit then outcome := Some Restart
      end
    end
    else begin
      if float_of_int (Ivec.size t.learnts) >= t.max_learnts then begin
        reduce_db t;
        t.max_learnts <- t.max_learnts *. t.config.learntsize_inc
      end;
      match pick_branch_var t with
      | None -> outcome := Some (Done (Sat (model_of t)))
      | Some v ->
          t.stats.decisions <- t.stats.decisions + 1;
          Ivec.push t.trail_lim t.trail_size;
          t.stats.max_decision_level <- Int.max t.stats.max_decision_level (decision_level t);
          let p = (2 * v) + if t.phase.(v) then 0 else 1 in
          enqueue t p Arena.none
    end
  done;
  Option.get !outcome

(* ---------------- audit: internal consistency ---------------- *)

(* Structural invariants of the watching scheme and the trail, checked from
   the outside by the audit layer (lib/audit) and, when the BOSPHORUS_AUDIT
   environment variable opts in, by [solve] itself before searching. *)
let invariant_violations t =
  let a = t.arena in
  let out = ref [] in
  let err fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  let watched c p =
    let found = ref false in
    let ws = t.watches.(lit_neg p) in
    let i = ref 0 in
    while !i < Ivec.size ws do
      if Ivec.get ws !i = c then found := true;
      i := !i + 2
    done;
    !found
  in
  let check_clause tag i c =
    let n = Arena.n_lits a c in
    for k = 0 to n - 1 do
      let p = Arena.lit a c k in
      if lit_var p < 0 || lit_var p >= t.nvars then
        err "%s clause %d: literal %d outside the %d-variable range" tag i p t.nvars
    done;
    if Arena.is_deleted a c then
      err "%s clause %d: deleted clause still referenced from the live vector" tag i;
    if n >= 2 then begin
      if not (watched c (Arena.lit a c 0)) then
        err "%s clause %d: not on the watch list of its first literal %d" tag i
          (Arena.lit a c 0);
      if not (watched c (Arena.lit a c 1)) then
        err "%s clause %d: not on the watch list of its second literal %d" tag i
          (Arena.lit a c 1)
    end
  in
  let idx = ref 0 in
  Ivec.iter (fun c -> check_clause "problem" !idx c; incr idx) t.clauses;
  idx := 0;
  Ivec.iter (fun c -> check_clause "learnt" !idx c; incr idx) t.learnts;
  for l = 0 to (2 * t.nvars) - 1 do
    let ws = t.watches.(l) in
    if Ivec.size ws land 1 = 1 then
      err "watch list of literal %d: odd number of watcher words" l;
    let i = ref 0 in
    while !i + 1 < Ivec.size ws do
      let c = Ivec.get ws !i and blocker = Ivec.get ws (!i + 1) in
      i := !i + 2;
      (* watchers of deleted clauses are legal: they are dropped lazily *)
      if not (Arena.is_deleted a c) then begin
        if Arena.n_lits a c < 2 then
          err "watch list of literal %d: clause with %d literals" l (Arena.n_lits a c)
        else begin
          if Arena.lit a c 0 <> lit_neg l && Arena.lit a c 1 <> lit_neg l then
            err "watch list of literal %d: clause does not watch that literal" l;
          let in_clause = ref false in
          for k = 0 to Arena.n_lits a c - 1 do
            if Arena.lit a c k = blocker then in_clause := true
          done;
          if not !in_clause then
            err "watch list of literal %d: blocker %d not in the clause" l blocker
        end
      end
    done
  done;
  if t.qhead > t.trail_size then
    err "propagation head %d beyond the trail size %d" t.qhead t.trail_size;
  let seen_vars = Hashtbl.create 64 in
  for i = 0 to t.trail_size - 1 do
    let p = t.trail.(i) in
    let v = lit_var p in
    if Hashtbl.mem seen_vars v then err "variable %d appears twice on the trail" v;
    Hashtbl.replace seen_vars v ();
    let expected = p land 1 in
    if t.assigns.(v) <> expected then
      err "trail literal %d disagrees with the assignment of variable %d" p v
  done;
  Array.iteri
    (fun v rows ->
      List.iter
        (fun (row : xor_row) ->
          let n = Array.length row.vars in
          if row.w0 < 0 || row.w0 >= n || row.w1 < 0 || row.w1 >= n || row.w0 = row.w1
          then err "xor row watched on invalid positions (%d, %d)" row.w0 row.w1
          else if row.vars.(row.w0) <> v && row.vars.(row.w1) <> v then
            err "xor row on the watch list of variable %d watches neither position on it" v)
        rows)
    t.xor_watches;
  List.rev !out

(* Domain-safety note: a solver instance is confined to the domain that
   uses it — all search state lives in [t]; this module keeps no mutable
   globals, so independent instances may run on concurrent domains (the
   bench driver's --jobs batching relies on this).  The audit flag is read
   eagerly rather than via [lazy]: Lazy.force from several domains races
   (Lazy.RacyLazy). *)
let audit_hooks =
  match Sys.getenv_opt "BOSPHORUS_AUDIT" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let self_check t =
  if audit_hooks then
    match invariant_violations t with
    | [] -> ()
    | v :: _ -> failwith ("Solver invariant violated: " ^ v)

let solve_inner ?conflict_budget ?time_budget_s ?interrupt t =
  if not t.ok then Unsat
  else if (match interrupt with Some f -> f () | None -> false) then Undecided
  else begin
    self_check t;
    cancel_until t 0;
    t.max_learnts <-
      Float.max 1000.0
        (t.config.learntsize_factor *. float_of_int (Ivec.size t.clauses));
    let budget_left = Option.map (fun b -> t.stats.conflicts + b) conflict_budget in
    let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) time_budget_s in
    if propagate t <> Arena.none then begin
      mark_unsat t;
      Unsat
    end
    else begin
      let rec run restart_no =
        let limit =
          if t.config.use_luby then
            int_of_float (luby 2.0 restart_no *. float_of_int t.config.restart_first)
          else
            int_of_float
              (float_of_int t.config.restart_first *. (t.config.restart_inc ** float_of_int restart_no))
        in
        match search t ~restart_limit:(Int.max 1 limit) ~budget_left ~deadline ~interrupt with
        | Done r -> r
        | Restart ->
            t.stats.restarts <- t.stats.restarts + 1;
            cancel_until t 0;
            run (restart_no + 1)
      in
      let result = run 0 in
      cancel_until t 0;
      result
    end
  end

(* Per-round observability: the whole solve is one span, and the round's
   work shows up as deltas on process-global counters (the solver's own
   [stats] stay cumulative per instance, which is what the driver's
   round accounting diffs). *)
let m_propagations = Obs.Metrics.counter "sat.propagations"
let m_conflicts = Obs.Metrics.counter "sat.conflicts"
let m_restarts = Obs.Metrics.counter "sat.restarts"
let m_decisions = Obs.Metrics.counter "sat.decisions"

let solve ?conflict_budget ?time_budget_s ?interrupt t =
  Obs.Trace.with_span ~name:"sat.solve" @@ fun () ->
  let s = t.stats in
  let p0 = s.propagations
  and c0 = s.conflicts
  and r0 = s.restarts
  and d0 = s.decisions in
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.incr m_propagations ~by:(s.propagations - p0);
      Obs.Metrics.incr m_conflicts ~by:(s.conflicts - c0);
      Obs.Metrics.incr m_restarts ~by:(s.restarts - r0);
      Obs.Metrics.incr m_decisions ~by:(s.decisions - d0))
    (fun () -> solve_inner ?conflict_budget ?time_budget_s ?interrupt t)

let probe t l =
  if not t.ok then `Unusable
  else begin
    cancel_until t 0;
    if propagate t <> Arena.none then begin
      mark_unsat t;
      `Unusable
    end
    else begin
      let p = Cnf.Lit.to_index l in
      if lit_code t p <> code_unknown then `Unusable
      else begin
        Ivec.push t.trail_lim t.trail_size;
        let base = t.trail_size in
        enqueue t p Arena.none;
        let outcome =
          if propagate t <> Arena.none then `Conflict
          else
            `Implied
              (List.init (t.trail_size - base - 1) (fun i ->
                   Cnf.Lit.of_index t.trail.(base + 1 + i)))
        in
        cancel_until t 0;
        outcome
      end
    end
  end

let okay t = t.ok

let root_units t =
  (* after cancel_until 0 the entire trail is level-0 facts *)
  let upto = if decision_level t = 0 then t.trail_size else Ivec.get t.trail_lim 0 in
  List.init upto (fun i -> Cnf.Lit.of_index t.trail.(i))

let n_root_units t =
  if decision_level t = 0 then t.trail_size else Ivec.get t.trail_lim 0

let root_units_from t k =
  let upto = n_root_units t in
  let k = Int.max 0 (Int.min k upto) in
  List.init (upto - k) (fun i -> Cnf.Lit.of_index t.trail.(k + i))

let n_learnt_binaries t = Ivec.size t.binlog / 2

let learnt_binaries_from t k =
  let n = n_learnt_binaries t in
  let k = Int.max 0 (Int.min k n) in
  List.init (n - k) (fun i ->
      ( Cnf.Lit.of_index (Ivec.get t.binlog (2 * (k + i))),
        Cnf.Lit.of_index (Ivec.get t.binlog ((2 * (k + i)) + 1)) ))

let learnt_binaries t = learnt_binaries_from t 0

let learnt_clauses t =
  let a = t.arena in
  let acc = ref [] in
  Ivec.iter
    (fun c ->
      acc :=
        List.init (Arena.n_lits a c) (fun i -> Cnf.Lit.of_index (Arena.lit a c i)) :: !acc)
    t.learnts;
  List.rev !acc

(* Test/diagnostic hooks for the arena lifecycle. *)
let reduce_learnts t = reduce_db t
let arena_bytes t = Arena.capacity_bytes t.arena
let arena_wasted_words t = Arena.wasted t.arena
let n_live_learnts t = Ivec.size t.learnts

let value t v = if v < 0 || v >= t.nvars then Unknown else var_value t v
let stats t = t.stats
