type t = {
  mutable heap : int array; (* heap slots -> variable *)
  mutable pos : int array; (* variable -> heap slot, or -1 *)
  mutable size : int;
  mutable activity : float array;
}

let create n activity =
  { heap = Array.make (Int.max 1 n) 0; pos = Array.make (Int.max 1 n) (-1); size = 0; activity }

let grow h n activity =
  let cap = Array.length h.pos in
  if n > cap then begin
    let heap = Array.make n 0 and pos = Array.make n (-1) in
    Array.blit h.heap 0 heap 0 h.size;
    Array.blit h.pos 0 pos 0 cap;
    h.heap <- heap;
    h.pos <- pos
  end;
  h.activity <- activity;
  h

let is_empty h = h.size = 0
let mem h v = v < Array.length h.pos && h.pos.(v) >= 0

(* Higher activity first; ties broken by lower variable index for
   determinism. *)
let before h a b =
  h.activity.(a) > h.activity.(b) || (h.activity.(a) = h.activity.(b) && a < b)

let swap h i j =
  let a = h.heap.(i) and b = h.heap.(j) in
  h.heap.(i) <- b;
  h.heap.(j) <- a;
  h.pos.(b) <- i;
  h.pos.(a) <- j

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before h h.heap.(i) h.heap.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < h.size && before h h.heap.(l) h.heap.(!best) then best := l;
  if r < h.size && before h h.heap.(r) h.heap.(!best) then best := r;
  if !best <> i then begin
    swap h i !best;
    sift_down h !best
  end

let insert h v =
  if not (mem h v) then begin
    h.heap.(h.size) <- v;
    h.pos.(v) <- h.size;
    h.size <- h.size + 1;
    sift_up h (h.size - 1)
  end

let remove_max h =
  if h.size = 0 then invalid_arg "Var_heap.remove_max: empty";
  let top = h.heap.(0) in
  h.size <- h.size - 1;
  h.pos.(top) <- -1;
  if h.size > 0 then begin
    h.heap.(0) <- h.heap.(h.size);
    h.pos.(h.heap.(0)) <- 0;
    sift_down h 0
  end;
  top

let update h v =
  if mem h v then begin
    sift_up h h.pos.(v);
    sift_down h h.pos.(v)
  end

let rebuild h vars =
  Array.fill h.pos 0 (Array.length h.pos) (-1);
  h.size <- 0;
  List.iter (insert h) vars
