(* Tests for the racing SAT portfolio and its lock-free clause exchange.

   The load-bearing properties, in test order: the exchange delivers
   exactly what was published (including across buffer growth and across
   domains); a sharing-off single-seat race is bit-identical to a lone
   solve; a race returns the same status as the solvers it contains; at
   most one seat wins and losers can only return Undecided through
   cancellation; and every clause that crossed the exchange is certified —
   by RUP replay over the formula plus previously verified exchanged
   clauses where possible, and by independent solver re-derivation
   (formula plus the clause's negation refuted from scratch) always. *)

module L = Cnf.Lit
module S = Sat.Solver
module Pf = Sat.Portfolio
module Ex = Sat.Portfolio.Exchange

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let clause lits = List.map L.of_dimacs lits

let formula_of ~nvars cls =
  Cnf.Formula.create ~nvars (List.map (fun c -> Cnf.Clause.of_list (clause c)) cls)

let solver_of ~nvars cls =
  let s = S.create ~nvars () in
  List.iter (fun c -> ignore (S.add_clause s (clause c))) cls;
  s

let is_sat = function Sat.Types.Sat _ -> true | _ -> false
let is_unsat = function Sat.Types.Unsat -> true | _ -> false
let is_undecided = function Sat.Types.Undecided -> true | _ -> false

let pigeonhole ~holes =
  let pigeons = holes + 1 in
  let v p h = (p * holes) + h + 1 in
  let at_least = List.init pigeons (fun p -> List.init holes (fun h -> v p h)) in
  let at_most =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p1 ->
            List.filter_map
              (fun p2 -> if p2 > p1 then Some [ -(v p1 h); -(v p2 h) ] else None)
              (List.init pigeons Fun.id))
          (List.init pigeons Fun.id))
      (List.init holes Fun.id)
  in
  at_least @ at_most

(* ------------------------------------------------------------------ *)
(* Exchange                                                            *)
(* ------------------------------------------------------------------ *)

let test_exchange_basic () =
  let ex = Ex.create ~workers:3 in
  Ex.publish ex ~worker:0 ~n:1 ~a:4 ~b:0 ~c:0;
  Ex.publish ex ~worker:1 ~n:2 ~a:2 ~b:5 ~c:0;
  Ex.publish ex ~worker:0 ~n:3 ~a:1 ~b:3 ~c:7;
  check_int "three records" 3 (Ex.n_records ex);
  let cur = Ex.cursor ex in
  check "reader 2 has pending" true (Ex.pending ex cur ~self:2);
  let seen = ref [] in
  let got =
    Ex.drain ex cur ~self:2 (fun ~n ~a ~b ~c -> seen := (n, a, b, c) :: !seen)
  in
  check_int "drained all three" 3 got;
  check "lane order, publication order" true
    (List.rev !seen = [ (1, 4, 0, 0); (3, 1, 3, 7); (2, 2, 5, 0) ]);
  check "drained means no pending" false (Ex.pending ex cur ~self:2);
  check_int "second drain is empty" 0
    (Ex.drain ex cur ~self:2 (fun ~n:_ ~a:_ ~b:_ ~c:_ -> ()));
  (* a reader never sees its own lane *)
  let cur0 = Ex.cursor ex in
  let own = Ex.drain ex cur0 ~self:0 (fun ~n:_ ~a:_ ~b:_ ~c:_ -> ()) in
  check_int "reader 0 skips lane 0" 1 own;
  check "records snapshot" true
    (Ex.records ex = [ [| 4 |]; [| 1; 3; 7 |]; [| 2; 5 |] ])

let test_exchange_growth () =
  (* force several buffer doublings in one lane and check nothing tears *)
  let ex = Ex.create ~workers:2 in
  let n = 500 in
  for i = 0 to n - 1 do
    Ex.publish ex ~worker:0 ~n:2 ~a:i ~b:(i * 3) ~c:0
  done;
  let cur = Ex.cursor ex in
  let next = ref 0 in
  let got =
    Ex.drain ex cur ~self:1 (fun ~n:w ~a ~b ~c ->
        if w <> 2 || a <> !next || b <> !next * 3 || c <> 0 then
          Alcotest.failf "record %d corrupted: (%d,%d,%d,%d)" !next w a b c;
        incr next)
  in
  check_int "all records across growth" n got

let test_exchange_cross_domain () =
  (* one writer domain, one reader domain polling concurrently: the
     reader must only ever see fully published records, in order *)
  let ex = Ex.create ~workers:2 in
  let n = 20_000 in
  let writer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          Ex.publish ex ~worker:0 ~n:2 ~a:i ~b:(i lxor 0x5555) ~c:0
        done)
  in
  let cur = Ex.cursor ex in
  let next = ref 0 in
  while !next < n do
    ignore
      (Ex.drain ex cur ~self:1 (fun ~n:w ~a ~b ~c ->
           if w <> 2 || a <> !next || b <> !next lxor 0x5555 || c <> 0 then
             Alcotest.failf "cross-domain record %d corrupted: (%d,%d,%d,%d)"
               !next w a b c;
           incr next))
  done;
  Domain.join writer;
  check_int "reader saw every record exactly once" n !next

(* ------------------------------------------------------------------ *)
(* Bit-identity with sharing off                                       *)
(* ------------------------------------------------------------------ *)

let test_single_seat_bit_identity () =
  (* a race of one pristine seat with sharing off must walk exactly the
     lone solver's trajectory: same result, same conflict/decision/
     propagation counts *)
  let cls = pigeonhole ~holes:5 in
  let nvars = 6 * 5 in
  let lone = solver_of ~nvars cls in
  let lone_result = S.solve lone in
  let raced = solver_of ~nvars cls in
  let o =
    Pf.race ~share:false
      ~workers:[ { Pf.name = "w0:minisat"; config = S.default_config; phase_seed = 0 } ]
      raced
  in
  check "same status" true (is_unsat lone_result && is_unsat o.Pf.result);
  let a = S.stats lone and b = S.stats raced in
  check_int "same conflicts" a.Sat.Types.conflicts b.Sat.Types.conflicts;
  check_int "same decisions" a.Sat.Types.decisions b.Sat.Types.decisions;
  check_int "same propagations" a.Sat.Types.propagations b.Sat.Types.propagations;
  check_int "same restarts" a.Sat.Types.restarts b.Sat.Types.restarts;
  check_int "nothing imported" 0 b.Sat.Types.imported_clauses;
  check_int "nothing exported" 0 b.Sat.Types.exported_clauses;
  check_int "exchange stayed empty" 0 (List.length o.Pf.exchanged)

let test_clone_bit_identity () =
  (* a clone with the same config solves bit-identically to its source *)
  let cls = pigeonhole ~holes:4 in
  let nvars = 5 * 4 in
  let s = solver_of ~nvars cls in
  let c = S.clone s in
  let r1 = S.solve s and r2 = S.solve c in
  check "both unsat" true (is_unsat r1 && is_unsat r2);
  let a = S.stats s and b = S.stats c in
  check_int "same conflicts" a.Sat.Types.conflicts b.Sat.Types.conflicts;
  check_int "same decisions" a.Sat.Types.decisions b.Sat.Types.decisions

(* ------------------------------------------------------------------ *)
(* Race semantics                                                      *)
(* ------------------------------------------------------------------ *)

let count_winners o =
  List.length (List.filter (fun r -> r.Pf.rwinner) o.Pf.reports)

let test_race_decides_sat () =
  let n = 30 in
  let cls = [ 1 ] :: List.init (n - 1) (fun i -> [ -(i + 1); i + 2 ]) in
  let o = Pf.solve ~k:4 (formula_of ~nvars:n cls) in
  check "sat" true (is_sat o.Pf.result);
  check_int "four reports" 4 (List.length o.Pf.reports);
  check "a worker won" true (o.Pf.winner >= 0);
  check_int "exactly one winner" 1 (count_winners o);
  (match o.Pf.result with
  | Sat.Types.Sat model ->
      check "model satisfies the formula" true
        (Cnf.Formula.eval
           (fun v -> v < Array.length model && model.(v))
           (formula_of ~nvars:n cls))
  | _ -> Alcotest.fail "expected a model");
  (* the winning solver is the surviving state *)
  check "winner's solver answers" true (S.okay o.Pf.solver)

let test_race_decides_unsat_and_cancels () =
  let holes = 6 in
  let o =
    Pf.solve ~k:3 (formula_of ~nvars:((holes + 1) * holes) (pigeonhole ~holes))
  in
  check "unsat" true (is_unsat o.Pf.result);
  check_int "exactly one winner" 1 (count_winners o);
  (* With no budgets and no caller interrupt, Undecided has exactly one
     source: the winner's cancellation token.  Every loser either decided
     the same way or was cancelled. *)
  List.iter
    (fun r ->
      check
        (Printf.sprintf "%s: loser cancelled or agrees" r.Pf.rname)
        true
        (r.Pf.rwinner || is_unsat r.Pf.rresult || is_undecided r.Pf.rresult))
    o.Pf.reports;
  check "winner's report matches the outcome" true
    (is_unsat (List.nth o.Pf.reports o.Pf.winner).Pf.rresult)

let test_race_respects_conflict_budget () =
  let holes = 7 in
  let f = formula_of ~nvars:((holes + 1) * holes) (pigeonhole ~holes) in
  let o = Pf.solve ~conflict_budget:10 ~k:3 f in
  check "undecided under a tiny budget" true (is_undecided o.Pf.result);
  check_int "no winner" (-1) o.Pf.winner;
  check_int "no report claims the win" 0 (count_winners o)

let test_race_caller_interrupt () =
  let holes = 7 in
  let f = formula_of ~nvars:((holes + 1) * holes) (pigeonhole ~holes) in
  let o = Pf.race ~interrupt:(fun () -> true) ~workers:(Pf.default_workers ~k:2)
      (solver_of ~nvars:((holes + 1) * holes) (pigeonhole ~holes))
  in
  ignore f;
  check "interrupted race is undecided" true (is_undecided o.Pf.result)

let test_default_workers_shape () =
  let ws = Pf.default_workers ~k:7 in
  check_int "k workers" 7 (List.length ws);
  let w0 = List.hd ws in
  check "worker 0 pristine" true (w0.Pf.phase_seed = 0);
  check "worker 0 default config" true (w0.Pf.config = S.default_config);
  let names = List.map (fun w -> w.Pf.name) ws in
  check "names distinct" true
    (List.length (List.sort_uniq compare names) = 7);
  List.iteri
    (fun i w -> if i > 0 then check (w.Pf.name ^ " jittered") true (w.Pf.phase_seed <> 0))
    ws;
  (* deterministic: same k, same workers *)
  check "deterministic" true (Pf.default_workers ~k:7 = ws)

(* ------------------------------------------------------------------ *)
(* Differential sweep with certification of every exchanged clause     *)
(* ------------------------------------------------------------------ *)

let random_cnf rng =
  let nvars = 8 + Random.State.int rng 5 in
  let n_clauses = 4 * nvars + Random.State.int rng nvars in
  let cls =
    List.init n_clauses (fun _ ->
        let rec pick acc k =
          if k = 0 then acc
          else
            let v = 1 + Random.State.int rng nvars in
            if List.mem v acc then pick acc k else pick (v :: acc) (k - 1)
        in
        List.map
          (fun v -> if Random.State.bool rng then v else -v)
          (pick [] 3))
  in
  (nvars, cls)

(* Complete certification of one exchanged clause: RUP against the
   formula plus previously verified exchanged clauses when that single
   propagation pass suffices, else independent re-derivation — a fresh
   pristine solver must refute formula + (negation of every literal). *)
let certify_exchanged ~nvars ~formula_clauses exchanged =
  let verified = ref [] in
  List.iter
    (fun packed ->
      let lits = Array.to_list (Array.map L.of_index packed) in
      let rup = Sat.Proof.is_rup ~clauses:(formula_clauses @ !verified) lits in
      let ok =
        rup
        ||
        let s = S.create ~nvars () in
        List.iter (fun c -> ignore (S.add_clause s c)) formula_clauses;
        let negation_consistent =
          List.for_all (fun l -> S.add_clause s [ L.neg l ]) lits
        in
        (not negation_consistent) || is_unsat (S.solve s)
      in
      if not ok then
        Alcotest.failf "exchanged clause not re-derivable: %s"
          (String.concat " "
             (List.map (fun l -> string_of_int (L.to_dimacs l)) lits));
      verified := lits :: !verified)
    exchanged

let test_differential_with_sharing () =
  let rng = Random.State.make [| 0x0b05f0 |] in
  let n_formulas = 30 in
  let n_exchanged = ref 0 in
  for i = 1 to n_formulas do
    let nvars, cls = random_cnf rng in
    let f = formula_of ~nvars cls in
    let oracle = Cnf.Formula.brute_force_sat f in
    (* each profile alone *)
    let profile_status =
      List.map
        (fun p -> is_sat (Sat.Profiles.solve p f).Sat.Profiles.result)
        Sat.Profiles.all
    in
    (* the portfolio, sharing on, ternaries included *)
    let o = Pf.solve ~k:3 ~share:true ~ternary_lbd_cap:3 f in
    let sat = is_sat o.Pf.result in
    check (Printf.sprintf "formula %d: race decided" i) true
      (not (is_undecided o.Pf.result));
    (match oracle with
    | Some truth ->
        check (Printf.sprintf "formula %d: matches oracle" i) true (truth = sat);
        List.iteri
          (fun j s ->
            check
              (Printf.sprintf "formula %d: profile %d agrees" i j)
              true (s = truth))
          profile_status
    | None -> ());
    n_exchanged := !n_exchanged + List.length o.Pf.exchanged;
    let formula_clauses =
      List.map Cnf.Clause.to_list (Cnf.Formula.clauses f)
    in
    certify_exchanged ~nvars ~formula_clauses o.Pf.exchanged;
    (* bookkeeping agrees with the exchange *)
    let exported =
      List.fold_left
        (fun acc r -> acc + r.Pf.rstats.Sat.Types.exported_clauses)
        0 o.Pf.reports
    in
    check_int
      (Printf.sprintf "formula %d: exported = published" i)
      (List.length o.Pf.exchanged) exported
  done;
  (* the sweep must actually exercise sharing, not just pass vacuously *)
  check "clauses were exchanged somewhere in the sweep" true (!n_exchanged > 0)

let test_imports_flow () =
  (* a race on an UNSAT instance hard enough to outlast the export
     cadence (~1024 conflicts per slice): clauses must both travel to the
     exchange and be imported mid-race (the CI smoke asserts the same on
     a fixed instance) *)
  let holes = 7 in
  let f = formula_of ~nvars:((holes + 1) * holes) (pigeonhole ~holes) in
  let o = Pf.solve ~k:2 ~share:true f in
  check "unsat" true (is_unsat o.Pf.result);
  check "clauses travelled" true (o.Pf.exported > 0);
  check "clauses were imported" true (o.Pf.imported > 0)

let suite =
  [
    ( "portfolio",
      [
        Alcotest.test_case "exchange basic" `Quick test_exchange_basic;
        Alcotest.test_case "exchange growth" `Quick test_exchange_growth;
        Alcotest.test_case "exchange cross-domain" `Quick
          test_exchange_cross_domain;
        Alcotest.test_case "single seat bit-identity" `Quick
          test_single_seat_bit_identity;
        Alcotest.test_case "clone bit-identity" `Quick test_clone_bit_identity;
        Alcotest.test_case "race decides sat" `Quick test_race_decides_sat;
        Alcotest.test_case "race decides unsat and cancels" `Quick
          test_race_decides_unsat_and_cancels;
        Alcotest.test_case "race respects conflict budget" `Quick
          test_race_respects_conflict_budget;
        Alcotest.test_case "race caller interrupt" `Quick
          test_race_caller_interrupt;
        Alcotest.test_case "default workers shape" `Quick
          test_default_workers_shape;
        Alcotest.test_case "differential with sharing + certification"
          `Quick test_differential_with_sharing;
        Alcotest.test_case "imports flow" `Quick test_imports_flow;
      ] );
  ]
