(* Tests for the solver's utility structures: growable vectors and the
   activity-ordered variable heap. *)

module V = Sat.Vec
module H = Sat.Var_heap

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vec_push_get () =
  let v = V.create ~dummy:(-1) in
  check_int "empty" 0 (V.size v);
  for i = 0 to 99 do
    V.push v i
  done;
  check_int "size" 100 (V.size v);
  check_int "get 0" 0 (V.get v 0);
  check_int "get 99" 99 (V.get v 99);
  V.set v 5 500;
  check_int "set" 500 (V.get v 5)

let test_vec_bounds () =
  let v = V.of_list ~dummy:0 [ 1; 2; 3 ] in
  Alcotest.check_raises "get oob"
    (Invalid_argument "Vec: index 3 out of range (size 3)") (fun () ->
      ignore (V.get v 3));
  Alcotest.check_raises "set negative"
    (Invalid_argument "Vec: index -1 out of range (size 3)") (fun () ->
      V.set v (-1) 0);
  Alcotest.check_raises "bad shrink" (Invalid_argument "Vec.shrink") (fun () -> V.shrink v 4)

let test_vec_pop_last () =
  let v = V.of_list ~dummy:0 [ 1; 2; 3 ] in
  check_int "last" 3 (V.last v);
  check_int "pop" 3 (V.pop v);
  check_int "size after pop" 2 (V.size v);
  V.clear v;
  check_int "cleared" 0 (V.size v);
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      ignore (V.pop v))

let test_vec_filter_in_place () =
  let v = V.of_list ~dummy:0 [ 1; 2; 3; 4; 5; 6 ] in
  V.filter_in_place (fun x -> x mod 2 = 0) v;
  Alcotest.(check (list int)) "evens kept in order" [ 2; 4; 6 ] (V.to_list v)

let test_vec_sort () =
  let v = V.of_list ~dummy:0 [ 5; 1; 4; 2; 3 ] in
  V.sort_in_place Int.compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (V.to_list v)

let test_vec_iter () =
  let v = V.of_list ~dummy:0 [ 10; 20; 30 ] in
  let sum = ref 0 in
  V.iter (fun x -> sum := !sum + x) v;
  check_int "sum" 60 !sum

(* ------------------------------------------------------------------ *)
(* Var_heap                                                            *)
(* ------------------------------------------------------------------ *)

let test_heap_max_order () =
  let n = 10 in
  let activity = Array.init n float_of_int in
  let h = H.create n activity in
  for v = 0 to n - 1 do
    H.insert h v
  done;
  (* highest activity first *)
  let order = List.init n (fun _ -> H.remove_max h) in
  Alcotest.(check (list int)) "descending activity" [ 9; 8; 7; 6; 5; 4; 3; 2; 1; 0 ] order;
  check "empty" true (H.is_empty h)

let test_heap_ties_by_index () =
  let activity = Array.make 5 1.0 in
  let h = H.create 5 activity in
  List.iter (H.insert h) [ 3; 1; 4; 0; 2 ];
  let order = List.init 5 (fun _ -> H.remove_max h) in
  Alcotest.(check (list int)) "ties broken by lower index" [ 0; 1; 2; 3; 4 ] order

let test_heap_update () =
  let activity = Array.init 4 float_of_int in
  let h = H.create 4 activity in
  for v = 0 to 3 do
    H.insert h v
  done;
  (* boost variable 0 past everyone *)
  activity.(0) <- 100.0;
  H.update h 0;
  check_int "boosted to top" 0 (H.remove_max h)

let test_heap_insert_idempotent () =
  let activity = Array.make 3 0.0 in
  let h = H.create 3 activity in
  H.insert h 1;
  H.insert h 1;
  check_int "single copy" 1 (H.remove_max h);
  check "now empty" true (H.is_empty h)

let test_heap_mem_and_rebuild () =
  let activity = Array.make 6 0.0 in
  let h = H.create 6 activity in
  H.insert h 2;
  check "mem" true (H.mem h 2);
  check "not mem" false (H.mem h 3);
  H.rebuild h [ 4; 5 ];
  check "rebuilt drops old" false (H.mem h 2);
  check "rebuilt has new" true (H.mem h 4 && H.mem h 5)

let test_heap_grow () =
  let activity = Array.make 2 0.0 in
  let h = H.create 2 activity in
  H.insert h 0;
  let activity' = Array.make 8 0.0 in
  activity'.(7) <- 9.0;
  let h = H.grow h 8 activity' in
  H.insert h 7;
  check_int "new var wins" 7 (H.remove_max h);
  check_int "old var kept" 0 (H.remove_max h)

let prop_heap_is_sorting =
  QCheck.Test.make ~name:"heap drains in activity order" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 30) (float_range 0.0 100.0))
    (fun floats ->
      let n = List.length floats in
      let activity = Array.of_list floats in
      let h = H.create n activity in
      for v = 0 to n - 1 do
        H.insert h v
      done;
      let drained = List.init n (fun _ -> activity.(H.remove_max h)) in
      drained = List.sort (fun a b -> Float.compare b a) drained)

let suite =
  [
    ( "sat.vec",
      [
        Alcotest.test_case "push/get/set" `Quick test_vec_push_get;
        Alcotest.test_case "bounds" `Quick test_vec_bounds;
        Alcotest.test_case "pop/last/clear" `Quick test_vec_pop_last;
        Alcotest.test_case "filter_in_place" `Quick test_vec_filter_in_place;
        Alcotest.test_case "sort_in_place" `Quick test_vec_sort;
        Alcotest.test_case "iter" `Quick test_vec_iter;
      ] );
    ( "sat.var_heap",
      [
        Alcotest.test_case "max order" `Quick test_heap_max_order;
        Alcotest.test_case "ties by index" `Quick test_heap_ties_by_index;
        Alcotest.test_case "update after boost" `Quick test_heap_update;
        Alcotest.test_case "idempotent insert" `Quick test_heap_insert_idempotent;
        Alcotest.test_case "mem and rebuild" `Quick test_heap_mem_and_rebuild;
        Alcotest.test_case "grow" `Quick test_heap_grow;
        QCheck_alcotest.to_alcotest prop_heap_is_sorting;
      ] );
  ]
