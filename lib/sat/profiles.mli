(** The three solver configurations of the paper's evaluation (Table II).

    The original experiments compare MiniSat 2.2 (a minimalistic CDCL
    solver), Lingeling (a high-performance solver with heavy pre- and
    inprocessing), and CryptoMiniSat5 (CDCL plus native Gauss–Jordan
    elimination over XOR constraints).  We reproduce that spectrum as three
    profiles of our CDCL core:

    - {!Minisat}: the plain core, MiniSat-like defaults, no preprocessing.
    - {!Lingeling}: SatELite-style preprocessing (subsumption + bounded
      variable elimination) and a more aggressive search configuration.
    - {!Cms5}: light preprocessing plus XOR recovery with Gauss–Jordan
      elimination feeding derived facts to the search. *)

type profile = Minisat | Lingeling | Cms5

val all : profile list
val name : profile -> string
val of_name : string -> profile option

(** Search tunables of a profile, for callers that build the solver
    themselves (the portfolio diversifies these across workers). *)
val config : profile -> Solver.config

type output = {
  result : Types.result;  (** model given in the original variable numbering *)
  stats : Types.stats option;  (** CDCL statistics ([None] if preprocessing decided) *)
}

(** [solve ?conflict_budget ?time_budget_s profile f] solves [f] under the
    profile.  A returned model is always expressed over the original
    variables of [f] (preprocessing is transparent). *)
val solve :
  ?conflict_budget:int -> ?time_budget_s:float -> profile -> Cnf.Formula.t -> output
