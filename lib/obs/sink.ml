type entry = {
  path : string;
  write : out_channel -> unit;
  mutable completed : bool;
}

let entries : (string, entry) Hashtbl.t = Hashtbl.create 8
let m = Mutex.create ()
let installed = ref false

let write_entry e =
  let tmp = e.path ^ ".tmp" in
  match
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> e.write oc);
    Sys.rename tmp e.path
  with
  | () -> ()
  | exception _ -> ( try Sys.remove tmp with Sys_error _ -> ())

let take_pending () =
  Mutex.lock m;
  let pending =
    Hashtbl.fold
      (fun key e acc -> if e.completed then acc else (key, e) :: acc)
      entries []
  in
  List.iter (fun (_, e) -> e.completed <- true) pending;
  Mutex.unlock m;
  List.sort (fun (a, _) (b, _) -> String.compare a b) pending

let flush_all () = List.iter (fun (_, e) -> write_entry e) (take_pending ())

let register ~key ~path write =
  Mutex.lock m;
  Hashtbl.replace entries key { path; write; completed = false };
  let need_install = not !installed in
  installed := true;
  Mutex.unlock m;
  (* One finalizer for every sink: registered lazily so programs that
     never configure an output file never grow their at_exit chain. *)
  if need_install then Stdlib.at_exit flush_all

let with_entry key f =
  Mutex.lock m;
  let e = Hashtbl.find_opt entries key in
  Mutex.unlock m;
  Option.iter f e

let write_now ~key =
  with_entry key (fun e ->
      if not e.completed then begin
        e.completed <- true;
        write_entry e
      end)

let complete ~key = with_entry key (fun e -> e.completed <- true)

let pending () =
  Mutex.lock m;
  let keys =
    Hashtbl.fold (fun key e acc -> if e.completed then acc else key :: acc) entries []
  in
  Mutex.unlock m;
  List.sort String.compare keys
