(** Low-overhead nestable span tracing with per-domain buffers.

    The fact-learning loop interleaves XL, ElimLin and conflict-bounded
    CDCL across a domain pool; to see {e which} technique learns {e what},
    {e when}, and at what cost, every layer wraps its work in spans.  The
    recorder is designed around two constraints:

    - {b Disabled runs pay one branch.}  Tracing is off by default; every
      entry point reads a plain boolean and leaves.  Hot kernels can keep
      their instrumentation unconditionally.
    - {b No cross-domain contention.}  Each domain appends to its own
      buffer (domain-local storage, domain-local monotonic span ids); the
      only shared state is a registry mutex taken once per domain, at its
      first event.

    The export format is Chrome trace-event JSON ({!to_json}): runs open
    directly in [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto},
    with one track per domain, so pool-worker utilisation is visible at a
    glance.  Buffers are bounded: past {!set_capacity} events per domain,
    new spans are dropped (and counted in {!dropped}) rather than grown —
    an already-open span always records its end, so exported begin/end
    events stay matched even at the cap. *)

(** Event phase: span begin, span end, or a zero-duration instant mark
    (e.g. a budget trip). *)
type phase = Begin | End | Instant

type event = {
  ph : phase;
  name : string;
  ts_us : float;  (** microseconds since the process trace epoch *)
  tid : int;  (** id of the recording domain *)
  span_id : int;  (** domain-local monotonic id; shared by a Begin/End pair *)
  args : (string * string) list;
}

(** Enable or disable recording.  Off by default.  Enabling mid-run is
    safe; disabling mid-span simply stops the span's end from recording
    (the pair was begun while enabled, so the end is still written — see
    {!with_span}). *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** Per-domain event capacity (default 262144).  Applies to buffers
    created after the call; call before enabling. *)
val set_capacity : int -> unit

(** [with_span ~name ?args f] runs [f] inside a timed span recorded on
    the calling domain.  The span closes on normal return {e and} on
    exception (the exception is re-raised).  The closing event carries
    the GC words allocated inside the span as [gc_minor_words] /
    [gc_major_words] args — the per-phase allocation ledger of the
    off-heap work.  When tracing is disabled this is [f ()] plus one
    branch. *)
val with_span : name:string -> ?args:(string * string) list -> (unit -> 'a) -> 'a

(** Record a zero-duration instant event (rendered as a vertical mark). *)
val instant : ?args:(string * string) list -> string -> unit

(** [set_track_name name] labels the calling domain's track in the
    exported trace (Chrome [thread_name] metadata).  Portfolio workers
    call this once so their tracks read "w1:lingeling" rather than a bare
    domain id.  Latest call per domain wins; cleared by {!reset}. *)
val set_track_name : string -> unit

(** {2 Inspection (tests, reporting)} *)

(** Snapshot of all recorded events, grouped by recording domain in
    domain-registration order, each domain's events in recording order. *)
val events : unit -> event list

(** Total events currently buffered across all domains. *)
val n_events : unit -> int

(** Spans dropped because a domain buffer hit its capacity. *)
val dropped : unit -> int

(** Clear every buffer (counters, ids and drop counts included).  Only
    safe while no other domain is recording; intended for tests and for
    bench runs that trace each experiment separately. *)
val reset : unit -> unit

(** {2 Export} *)

(** The full Chrome trace-event document:
    [{"traceEvents": [...], "displayTimeUnit": "ms", "droppedSpans": n}].
    Spans begun but not yet finished are emitted with a synthetic end at
    export time, so the document always parses with matched B/E events. *)
val to_json : unit -> string

(** [write path] atomically writes {!to_json} to [path] (via a temporary
    file and rename, so a crash mid-write never leaves a torn file). *)
val write : string -> unit
