(* Typedtree rules: one pass of a Tast_iterator over a .cmt's structure,
   with targeted sub-walks for pool-task capture analysis and hot-path
   allocation scanning.

   Everything here is deliberately syntactic-plus-types: the walker sees
   the typedtree exactly as the compiler checked it (resolved paths,
   instantiated types), but performs no environment expansion — abstract
   types it cannot see through are declared in the check.hotpaths
   manifest ([immediate]/[mutable] sections) instead of guessed at. *)

open Typedtree

(* "Sat__Solver" -> "Sat.Solver" (dune's wrapped-library mangling) *)
let norm_modname s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && s.[!i] = '_' && s.[!i + 1] = '_' && Buffer.length b > 0
    then begin
      Buffer.add_char b '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

type ctx = {
  source_file : string;
  modname : string;
  man : Manifest.t;
  poly_in_scope : bool;
  parallel_module : bool;
  (* module-local hot binding paths, e.g. "propagate" for
     Sat.Solver.propagate when analyzing Sat__Solver *)
  hot_bindings : (string, unit) Hashtbl.t;
  (* Ident.unique_name -> bound expression, for resolving `Pool.map_list
     pool row_of xs` where row_of is a locally-defined function *)
  bindings : (string, expression) Hashtbl.t;
  mutable findings : Finding.t list;
  mutable attr_waivers : (string * string) list;  (* (rule-id, reason) *)
  mutable symbol : string list;  (* enclosing bindings, innermost first *)
}

let current_symbol ctx = String.concat "." (List.rev ctx.symbol)

let emit ctx rule (loc : Location.t) fmt =
  Format.kasprintf
    (fun message ->
      let id = Finding.rule_id rule in
      let waived =
        List.find_map
          (fun (r, reason) -> if String.equal r id then Some reason else None)
          ctx.attr_waivers
      in
      let pos = loc.loc_start in
      let f =
        Finding.make ~rule ~file:ctx.source_file ~line:pos.pos_lnum
          ~col:(pos.pos_cnum - pos.pos_bol)
          ~symbol:(current_symbol ctx) ~message
      in
      let f = match waived with Some r -> Finding.waive f r | None -> f in
      ctx.findings <- f :: ctx.findings)
    fmt

(* [@check.allow "rule" "reason"] — also accepted as a pair literal.  A
   missing or empty reason is itself a finding: waivers must explain
   themselves. *)
let parse_allow (attr : Parsetree.attribute) =
  if not (String.equal attr.attr_name.txt "check.allow") then None
  else
    let str e =
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_constant (Parsetree.Pconst_string (s, _, _)) -> Some s
      | _ -> None
    in
    match attr.attr_payload with
    | Parsetree.PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> (
        match e.pexp_desc with
        | Parsetree.Pexp_apply (f, [ (_, arg) ]) -> (
            match (str f, str arg) with
            | Some rule, Some reason -> Some (rule, reason)
            | _ -> None)
        | Parsetree.Pexp_tuple [ a; b ] -> (
            match (str a, str b) with
            | Some rule, Some reason -> Some (rule, reason)
            | _ -> None)
        | Parsetree.Pexp_constant (Parsetree.Pconst_string (rule, _, _)) ->
            Some (rule, "")
        | _ -> None)
    | _ -> None

let push_attrs ctx (attrs : Parsetree.attributes) =
  let pushed = ref 0 in
  List.iter
    (fun attr ->
      match parse_allow attr with
      | None -> ()
      | Some (rule, reason) ->
          if String.equal (String.trim reason) "" then
            emit ctx Finding.Waiver_no_reason attr.Parsetree.attr_loc
              "[@check.allow %S] has no reason; every waiver must explain \
               itself"
              rule
          else begin
            ctx.attr_waivers <- (rule, reason) :: ctx.attr_waivers;
            incr pushed
          end)
    attrs;
  !pushed

let pop_attrs ctx n =
  for _ = 1 to n do
    match ctx.attr_waivers with
    | _ :: rest -> ctx.attr_waivers <- rest
    | [] -> ()
  done

let with_attrs ctx attrs f =
  let n = push_attrs ctx attrs in
  Fun.protect ~finally:(fun () -> pop_attrs ctx n) f

(* ---------- path and type classification ---------- *)

let path_name p = norm_modname (Path.name p)

let pool_submit_fns =
  [
    "Runtime.Pool.run";
    "Runtime.Pool.run_results";
    "Runtime.Pool.submit";
    "Runtime.Pool.map_list";
    "Runtime.Pool.map_array";
    "Runtime.Pool.parallel_for";
    "Pool.run";
    "Pool.run_results";
    "Pool.submit";
    "Pool.map_list";
    "Pool.map_array";
    "Pool.parallel_for";
  ]

let is_pool_submit name = List.mem name pool_submit_fns

let poly_ops =
  [
    "Stdlib.compare";
    "Stdlib.=";
    "Stdlib.<>";
    "Stdlib.<";
    "Stdlib.>";
    "Stdlib.<=";
    "Stdlib.>=";
    "Stdlib.min";
    "Stdlib.max";
  ]

let raise_fns =
  [
    "Stdlib.raise";
    "Stdlib.raise_notrace";
    "Stdlib.failwith";
    "Stdlib.invalid_arg";
  ]

let is_printf name =
  String.starts_with ~prefix:"Stdlib.Printf." name
  || String.starts_with ~prefix:"Stdlib.Format." name

(* stderr-bound emitters are error-path by nature *)
let is_error_printf name =
  List.mem name
    [ "Stdlib.Printf.eprintf"; "Stdlib.Format.eprintf"; "Stdlib.prerr_endline"; "Stdlib.prerr_string" ]

let array_set_fns =
  [
    "Stdlib.Array.set";
    "Stdlib.Array.unsafe_set";
    "Stdlib.Array.fill";
    "Stdlib.Array.blit";
    "Stdlib.Bytes.set";
    "Stdlib.Bytes.unsafe_set";
    "Stdlib.Bytes.fill";
    "Stdlib.Bytes.blit";
  ]

let rec first_arg_type ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, a, _, _) -> Some a
  | Types.Tpoly (t, _) -> first_arg_type t
  | _ -> None

(* Float, string and bytes count as "immediate" here: ocamlopt
   specializes the comparison primitives (%equal, %compare, the ordering
   operators) at those statically known types, so no generic caml_compare
   call survives — and string hashing is a byte scan, not a structural
   recursion, so packed-string hash keys are exactly what the poly-hash
   rule asks violators to switch to.  min/max are different — they are
   ordinary functions, never specialized at any type. *)
let rec type_class man ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) ->
      if
        Path.same p Predef.path_int
        || Path.same p Predef.path_bool
        || Path.same p Predef.path_char
        || Path.same p Predef.path_unit
        || Path.same p Predef.path_float
        || Path.same p Predef.path_string
        || Path.same p Predef.path_bytes
      then `Immediate
      else
        let n = path_name p in
        if List.mem n man.Manifest.immediate_types then `Immediate
        else `Boxed n
  | Types.Ttuple _ -> `Boxed "a tuple"
  | Types.Tarrow _ -> `Boxed "a function"
  | Types.Tvar _ | Types.Tunivar _ -> `Unknown
  | Types.Tpoly (t, _) -> type_class man t
  | _ -> `Unknown

(* substring match on a dot-path component, so both Stdlib.Hashtbl.t and
   Stdlib.Hashtbl.Make(Anf.Monomial).t classify as hash tables *)
let name_mentions n component =
  let len = String.length component in
  let nl = String.length n in
  let rec go i =
    if i + len > nl then false
    else if String.sub n i len = component
            && (i = 0 || n.[i - 1] = '.')
            && (i + len = nl || n.[i + len] = '.' || n.[i + len] = '(')
    then true
    else go (i + 1)
  in
  go 0

let mutable_container man ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) ->
      let n = path_name p in
      if String.equal n "Stdlib.ref" || String.equal n "ref" then Some "ref"
      else if String.equal n "Stdlib.Atomic.t" then None
      else if name_mentions n "Hashtbl" then Some "hash table"
      else if name_mentions n "Buffer" then Some "Buffer.t"
      else if name_mentions n "Queue" then Some "Queue.t"
      else if name_mentions n "Stack" then Some "Stack.t"
      else if List.mem n man.Manifest.mutable_types then
        Some (Printf.sprintf "mutable container (%s)" n)
      else None
  | _ -> None

(* ---------- bound/free variable analysis for closures ---------- *)

let iter_expr it e = it.Tast_iterator.expr it e

let collect_bound (fexpr : expression) =
  let bound = Hashtbl.create 32 in
  let add id = Hashtbl.replace bound (Ident.unique_name id) () in
  let it =
    {
      Tast_iterator.default_iterator with
      pat =
        (fun (type k) sub (p : k general_pattern) ->
          (match p.pat_desc with
          | Tpat_var (id, _) -> add id
          | Tpat_alias (_, id, _) -> add id
          | _ -> ());
          Tast_iterator.default_iterator.pat sub p);
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_function { param; _ } -> add param
          | Texp_for (id, _, _, _, _, _) -> add id
          | Texp_letop { param; _ } -> add param
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  iter_expr it fexpr;
  bound

let lazy_idents name =
  String.starts_with ~prefix:"Stdlib.Lazy." name
  || String.equal name "CamlinternalLazy.force"

(* Scan one pool-task closure: rule 1 (captured mutable state, writes to
   captured arrays/fields) and rule 2 (lazy under a pool task). *)
let scan_task_closure ctx (fexpr : expression) =
  let bound = collect_bound fexpr in
  let is_free id = not (Hashtbl.mem bound (Ident.unique_name id)) in
  let reported = Hashtbl.create 8 in
  let once key f = if not (Hashtbl.mem reported key) then begin Hashtbl.add reported key (); f () end in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          with_attrs ctx e.exp_attributes @@ fun () ->
          (match e.exp_desc with
          | Texp_ident (Path.Pident id, _, _) when is_free id -> (
              match mutable_container ctx.man e.exp_type with
              | Some kind ->
                  once ("cap:" ^ Ident.unique_name id) (fun () ->
                      emit ctx Finding.Domain_capture e.exp_loc
                        "pool task captures non-atomic mutable state: %s %s"
                        kind (Ident.name id))
              | None -> ())
          | Texp_ident (p, _, _) when lazy_idents (path_name p) ->
              emit ctx Finding.Lazy_in_parallel e.exp_loc
                "%s under a pool task: forcing from several domains races \
                 (Lazy.RacyLazy)"
                (path_name p)
          | Texp_lazy _ ->
              emit ctx Finding.Lazy_in_parallel e.exp_loc
                "lazy block under a pool task: forcing from several domains \
                 races (Lazy.RacyLazy)"
          | Texp_setfield (r, _, lbl, _) -> (
              match r.exp_desc with
              | Texp_ident (Path.Pident id, _, _) when is_free id ->
                  emit ctx Finding.Domain_capture e.exp_loc
                    "pool task writes mutable field %s of captured %s"
                    lbl.lbl_name (Ident.name id)
              | Texp_ident (p, _, _) ->
                  emit ctx Finding.Domain_capture e.exp_loc
                    "pool task writes mutable field %s of global %s"
                    lbl.lbl_name (path_name p)
              | _ -> ())
          | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
            when List.mem (path_name p) array_set_fns -> (
              match args with
              | (_, Some { exp_desc = Texp_ident (Path.Pident id, _, _); _ })
                :: _
                when is_free id ->
                  once ("wr:" ^ Ident.unique_name id) (fun () ->
                      emit ctx Finding.Domain_capture e.exp_loc
                        "pool task writes captured array/bytes %s via %s"
                        (Ident.name id) (path_name p))
              | _ -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  iter_expr it fexpr

(* Resolve a pool-call argument to the closures it denotes: syntactic
   closures anywhere in the argument, plus (through a few levels of
   local indirection) closures in the binding of a locally-defined
   function passed by name — directly or inside a thunk-list literal. *)
let rec task_closures ctx depth (e : expression) =
  if depth > 3 then []
  else
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> (
        match Hashtbl.find_opt ctx.bindings (Ident.unique_name id) with
        | Some bound -> task_closures ctx (depth + 1) bound
        | None -> [])
    | Texp_function _ -> [ e ]
    | _ ->
        let out = ref [] in
        let it =
          {
            Tast_iterator.default_iterator with
            expr =
              (fun sub e' ->
                match e'.exp_desc with
                | Texp_function _ -> out := e' :: !out
                | Texp_ident (Path.Pident id, _, _) -> (
                    match Hashtbl.find_opt ctx.bindings (Ident.unique_name id) with
                    | Some bound ->
                        out := List.rev_append (task_closures ctx (depth + 1) bound) !out
                    | None -> ())
                | _ -> Tast_iterator.default_iterator.expr sub e');
          }
        in
        iter_expr it e;
        List.rev !out

let analyze_pool_call ctx args =
  List.iter
    (fun (_, arg) ->
      match arg with
      | None -> ()
      | Some e ->
          List.iter (scan_task_closure ctx) (task_closures ctx 0 e))
    args

(* ---------- hot-path allocation scanning (rule 3) ---------- *)

let scan_hotpath ctx (vb_expr : expression) =
  let error_depth = ref 0 in
  let rec hot_it =
    {
      Tast_iterator.default_iterator with
      expr = (fun sub e -> hot_expr sub e);
    }
  and hot_expr sub e =
    with_attrs ctx e.exp_attributes @@ fun () ->
    let ok = !error_depth = 0 in
    let alloc fmt = emit ctx Finding.Hotpath_alloc e.exp_loc fmt in
    match e.exp_desc with
    | Texp_function _ ->
        if ok then alloc "closure allocation in hot path";
        (* a curried chain is one runtime closure: emit once, then resume
           scanning at the innermost bodies *)
        let rec chain e' =
          match e'.exp_desc with
          | Texp_function { cases; _ } ->
              List.iter (fun c -> chain c.c_rhs) cases
          | _ -> hot_expr sub e'
        in
        (match e.exp_desc with
        | Texp_function { cases; _ } ->
            List.iter (fun c -> chain c.c_rhs) cases
        | _ -> ())
    | Texp_lazy _ when ok ->
        alloc "lazy block allocation in hot path";
        Tast_iterator.default_iterator.expr sub e
    | Texp_tuple _ when ok ->
        alloc "tuple allocation in hot path";
        Tast_iterator.default_iterator.expr sub e
    | Texp_record _ when ok ->
        alloc "record allocation in hot path";
        Tast_iterator.default_iterator.expr sub e
    | Texp_array _ when ok ->
        alloc "array literal allocation in hot path";
        Tast_iterator.default_iterator.expr sub e
    | Texp_construct (_, cd, args) when ok && args <> [] ->
        alloc "constructor %s allocation in hot path" cd.cstr_name;
        Tast_iterator.default_iterator.expr sub e
    | Texp_let (_, vbs, _) ->
        if ok then
          List.iter
            (fun vb ->
              match vb.vb_pat.pat_desc with
              | Tpat_var (id, _) -> (
                  match Types.get_desc vb.vb_pat.pat_type with
                  | Types.Tconstr (p, _, _)
                    when Path.same p Predef.path_float ->
                      emit ctx Finding.Hotpath_alloc vb.vb_pat.pat_loc
                        "float let-binding %s boxes in hot path"
                        (Ident.name id)
                  | _ -> ())
              | _ -> ())
            vbs;
        Tast_iterator.default_iterator.expr sub e
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _)
      when List.mem (path_name p) raise_fns ->
        (* allocations while building an exception are error-path *)
        incr error_depth;
        Fun.protect
          ~finally:(fun () -> decr error_depth)
          (fun () -> Tast_iterator.default_iterator.expr sub e)
    | Texp_assert _ ->
        incr error_depth;
        Fun.protect
          ~finally:(fun () -> decr error_depth)
          (fun () -> Tast_iterator.default_iterator.expr sub e)
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _)
      when ok && String.equal (path_name p) "Stdlib.ref" ->
        alloc "ref cell allocation in hot path";
        Tast_iterator.default_iterator.expr sub e
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _)
      when ok && is_printf (path_name p)
           && not (is_error_printf (path_name p)) ->
        alloc "%s in non-error hot path" (path_name p);
        Tast_iterator.default_iterator.expr sub e
    | Texp_apply (_, _) -> (
        (if ok then
           match Types.get_desc e.exp_type with
           | Types.Tarrow _ ->
               alloc "partial application allocates a closure in hot path"
           | _ -> ());
        Tast_iterator.default_iterator.expr sub e)
    | _ -> Tast_iterator.default_iterator.expr sub e
  in
  (* the binding's own curried parameter chain is not an allocation: peel
     it, scanning only the bodies *)
  let rec peel e =
    with_attrs ctx e.exp_attributes @@ fun () ->
    match e.exp_desc with
    | Texp_function { cases; _ } -> List.iter (fun c -> peel c.c_rhs) cases
    | _ -> iter_expr hot_it e
  in
  peel vb_expr

(* ---------- per-expression checks on the main walk ---------- *)

let check_ident ctx (e : expression) p =
  let name = path_name p in
  if String.equal name "Stdlib.Obj.magic" then
    emit ctx Finding.Obj_magic e.exp_loc
      "Obj.magic breaks every typing guarantee the analyzer relies on";
  if ctx.parallel_module && lazy_idents name then
    emit ctx Finding.Lazy_in_parallel e.exp_loc
      "%s in module %s (listed [parallel] in check.hotpaths): forcing from \
       several domains races (Lazy.RacyLazy)"
      name ctx.modname;
  if ctx.poly_in_scope && List.mem name poly_ops then
    (* Stdlib.min/max are ordinary polymorphic functions, not primitives:
       they call the generic comparison even at int, so they are flagged
       at every type.  The operators and compare are flagged only where
       the compiler cannot specialize them. *)
    let never_specialized =
      String.equal name "Stdlib.min" || String.equal name "Stdlib.max"
    in
    match first_arg_type e.exp_type with
    | None -> ()
    | Some a -> (
        match type_class ctx.man a with
        | `Immediate when never_specialized ->
            let op = if String.equal name "Stdlib.min" then "min" else "max" in
            emit ctx Finding.Poly_compare e.exp_loc
              "%s never specializes (generic comparison even at immediate \
               types): use Int.%s/Float.%s"
              name op op
        | `Immediate -> ()
        | `Boxed tyname ->
            emit ctx Finding.Poly_compare e.exp_loc
              "polymorphic %s at %s: use a monomorphic comparison" name tyname
        | `Unknown ->
            emit ctx Finding.Poly_compare e.exp_loc
              "polymorphic %s at an unknown type: monomorphize or waive" name)

let check_apply ctx (e : expression) f args =
  match f.exp_desc with
  | Texp_ident (p, _, _) -> (
      let name = path_name p in
      if is_pool_submit name then analyze_pool_call ctx args;
      if ctx.poly_in_scope then
        if String.equal name "Stdlib.Hashtbl.create" then (
          match Types.get_desc e.exp_type with
          | Types.Tconstr (_, [ k; _ ], _) -> (
              match type_class ctx.man k with
              | `Boxed tyname ->
                  emit ctx Finding.Poly_hash e.exp_loc
                    "structural Hashtbl keyed on %s: hashing recurses over \
                     the key on every probe — pack a canonical immediate key"
                    tyname
              | _ -> ())
          | _ -> ())
        else if String.equal name "Stdlib.Hashtbl.hash" then
          match first_arg_type f.exp_type with
          | Some a -> (
              match type_class ctx.man a with
              | `Boxed tyname ->
                  emit ctx Finding.Poly_hash e.exp_loc
                    "Hashtbl.hash at %s: structural hashing of a boxed key"
                    tyname
              | _ -> ())
          | None -> ())
  | _ -> ()

(* ---------- the main walk ---------- *)

let collect_bindings structure =
  let tbl = Hashtbl.create 64 in
  let it =
    {
      Tast_iterator.default_iterator with
      value_binding =
        (fun sub vb ->
          (match vb.vb_pat.pat_desc with
          | Tpat_var (id, _) ->
              Hashtbl.replace tbl (Ident.unique_name id) vb.vb_expr
          | _ -> ());
          Tast_iterator.default_iterator.value_binding sub vb);
    }
  in
  it.structure it structure;
  tbl

let analyze ~manifest ~source_file ~modname structure =
  let modname = norm_modname modname in
  let man = manifest in
  let starts_with_dir prefix =
    String.starts_with ~prefix source_file
  in
  let hot_bindings = Hashtbl.create 8 in
  List.iter
    (fun entry ->
      let prefix = modname ^ "." in
      if String.starts_with ~prefix entry then
        Hashtbl.replace hot_bindings
          (String.sub entry (String.length prefix)
             (String.length entry - String.length prefix))
          ())
    man.Manifest.hotpaths;
  let ctx =
    {
      source_file;
      modname;
      man;
      poly_in_scope = List.exists starts_with_dir man.Manifest.poly_scope;
      parallel_module = List.mem modname man.Manifest.parallel_modules;
      hot_bindings;
      bindings = collect_bindings structure;
      findings = [];
      attr_waivers = [];
      symbol = [];
    }
  in
  let it =
    {
      Tast_iterator.default_iterator with
      structure_item =
        (fun sub si ->
          (* [@@@check.allow "rule" "reason"] arms a waiver for the rest of
             the module *)
          (match si.str_desc with
          | Tstr_attribute attr -> ignore (push_attrs ctx [ attr ])
          | _ -> ());
          Tast_iterator.default_iterator.structure_item sub si);
      value_binding =
        (fun sub vb ->
          with_attrs ctx vb.vb_attributes @@ fun () ->
          match vb.vb_pat.pat_desc with
          | Tpat_var (_, name) ->
              ctx.symbol <- name.txt :: ctx.symbol;
              Fun.protect
                ~finally:(fun () ->
                  ctx.symbol <- List.tl ctx.symbol)
                (fun () ->
                  if Hashtbl.mem hot_bindings (current_symbol ctx) then
                    scan_hotpath ctx vb.vb_expr;
                  Tast_iterator.default_iterator.value_binding sub vb)
          | _ -> Tast_iterator.default_iterator.value_binding sub vb);
      expr =
        (fun sub e ->
          with_attrs ctx e.exp_attributes @@ fun () ->
          (match e.exp_desc with
          | Texp_ident (p, _, _) -> check_ident ctx e p
          | Texp_lazy _ when ctx.parallel_module ->
              emit ctx Finding.Lazy_in_parallel e.exp_loc
                "lazy block in module %s (listed [parallel] in \
                 check.hotpaths): forcing from several domains races \
                 (Lazy.RacyLazy)"
                ctx.modname
          | Texp_apply (f, args) -> check_apply ctx e f args
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.structure it structure;
  List.sort_uniq Finding.compare ctx.findings
