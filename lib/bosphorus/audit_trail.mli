(** Passive record of the evidence a run leaves behind, for post-hoc
    certification by the audit layer ([lib/audit]).

    The driver cannot call the audit library (that would be a dependency
    cycle), so when {!Config.t.audit_trail} is set it records the raw
    materials instead: the input ANF system as given, and for every SAT
    stage the CNF that was handed to the solver together with the solver's
    DRUP-style derivation log.  [Audit.Certify] later replays the logs with
    [Proof.is_rup] and re-derives algebraic facts by GF(2) row-space
    membership over products of the input polynomials. *)

type sat_stage = {
  formula : Cnf.Formula.t;  (** CNF given to the solver for this stage *)
  proof : Cnf.Lit.t list list;
      (** learnt-clause derivation log, in order (see [Sat.Proof]) *)
}

type t

(** [create ~input] starts a trail for a run over the given master ANF. *)
val create : input:Anf.Poly.t list -> t

val record_sat_stage : t -> formula:Cnf.Formula.t -> proof:Cnf.Lit.t list list -> unit

(** The input system, exactly as passed to [Driver.run]. *)
val input : t -> Anf.Poly.t list

(** Recorded SAT stages, in run order. *)
val sat_stages : t -> sat_stage list
