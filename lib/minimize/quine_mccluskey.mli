(** Prime-implicant generation by the Quine–McCluskey procedure.

    Exponential in the variable count, so intended for the small [K]-variate
    functions (K <= 8 by default in Bosphorus) fed to the Karnaugh-map
    conversion path. *)

(** [prime_implicants ~nvars on_set] computes all prime implicants of the
    Boolean function whose on-set is [on_set] (a list of minterms, each in
    [0, 2^nvars)).  Raises [Invalid_argument] if [nvars] is negative,
    exceeds 16, or a minterm is out of range. *)
val prime_implicants : nvars:int -> int list -> Cube.t list
