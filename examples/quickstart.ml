(* Quickstart: the paper's running example (Section II-E).

   Builds the 5-equation ANF system (1), shows what each technique learns,
   runs the full Bosphorus loop, and prints the unique solution.

   Run with: dune exec examples/quickstart.exe *)

let poly = Anf.Anf_io.poly_of_string

let system =
  List.map poly
    [
      "x1*x2 + x3 + x4 + 1";
      "x1*x2*x3 + x1 + x3 + 1";
      "x1*x3 + x3*x4*x5 + x3";
      "x2*x3 + x3*x5 + 1";
      "x2*x3 + x5 + 1";
    ]

let () =
  Format.printf "Input ANF system (each polynomial equated to 0):@.";
  List.iter (fun p -> Format.printf "  %a@." Anf.Poly.pp p) system;

  (* what a single XL pass learns (Section II-B) *)
  let config = Bosphorus.Config.default in
  let rng = Random.State.make [| 0 |] in
  let xl = Bosphorus.Xl.run ~config ~rng system in
  Format.printf "@.XL facts (D = %d):@." config.Bosphorus.Config.xl_degree;
  List.iter (fun p -> Format.printf "  %a@." Anf.Poly.pp p) xl.Bosphorus.Xl.facts;

  (* what ElimLin learns once those facts are in the master (Section II-C) *)
  let elim = Bosphorus.Elimlin.run_full (system @ xl.Bosphorus.Xl.facts) in
  Format.printf "@.ElimLin facts (after XL facts join the master):@.";
  List.iter (fun p -> Format.printf "  %a@." Anf.Poly.pp p) elim.Bosphorus.Elimlin.facts;

  (* the full loop (Fig. 1) *)
  let outcome = Bosphorus.Driver.run ~config system in
  Format.printf "@.Full Bosphorus loop: %d iteration(s), %d fact(s) learnt@."
    outcome.Bosphorus.Driver.iterations
    (Bosphorus.Facts.size outcome.Bosphorus.Driver.facts);
  match outcome.Bosphorus.Driver.status with
  | Bosphorus.Driver.Solved_sat sol ->
      Format.printf "Solution:";
      List.iter
        (fun (x, v) -> if x >= 1 then Format.printf " x%d=%d" x (if v then 1 else 0))
        sol;
      Format.printf "@.(paper: x1 = x2 = x3 = x4 = 1 and x5 = 0)@."
  | Bosphorus.Driver.Solved_unsat -> Format.printf "UNSAT?! (the system is satisfiable)@."
  | Bosphorus.Driver.Processed | Bosphorus.Driver.Degraded ->
      Format.printf "fixed point without a decision@."
