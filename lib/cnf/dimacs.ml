exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* Shared scanner: ordinary clause lines plus, when [allow_xor], lines
   starting with 'x' asserting the XOR of their literals. *)
let parse_general ~allow_xor s =
  let nvars = ref 0 in
  let declared = ref None in
  let max_lit = ref 0 in
  let clauses = ref [] in
  let xors = ref [] in
  let current = ref [] in
  let in_xor = ref false in
  let handle_int i =
    if i = 0 then begin
      (if !in_xor then begin
         (* XOR of literals = true; each negation flips the parity *)
         let vars = List.map Lit.var !current in
         let flips = List.length (List.filter Lit.negated !current) in
         (* duplicated variables cancel *)
         let sorted = List.sort Int.compare vars in
         let rec dedup = function
           | a :: b :: rest when a = b -> dedup rest
           | a :: rest -> a :: dedup rest
           | [] -> []
         in
         xors := (dedup sorted, flips mod 2 = 0) :: !xors
       end
       else clauses := Clause.of_list !current :: !clauses);
      current := [];
      in_xor := false
    end
    else begin
      max_lit := max !max_lit (abs i);
      (match !declared with
      | Some v when abs i > v ->
          fail "literal %d out of range: header declares %d variables" i v
      | Some _ | None -> ());
      current := Lit.of_dimacs i :: !current
    end
  in
  let handle_token tok =
    match int_of_string_opt tok with
    | Some i -> handle_int i
    | None -> fail "bad token %S" tok
  in
  let handle_line line =
    let line = String.trim line in
    if line = "" || line.[0] = 'c' || line.[0] = '%' then ()
    else if line.[0] = 'p' then begin
      match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
      | [ "p"; "cnf"; v; _c ] -> (
          match int_of_string_opt v with
          | Some v when v >= 0 ->
              nvars := v;
              declared := Some v;
              if !max_lit > v then
                fail "literal %d out of range: header declares %d variables"
                  !max_lit v
          | Some _ | None -> fail "bad header %S" line)
      | _ -> fail "bad header %S" line
    end
    else begin
      let line =
        if line.[0] = 'x' then
          if allow_xor then begin
            if !current <> [] then fail "xor line inside an open clause";
            in_xor := true;
            String.sub line 1 (String.length line - 1)
          end
          else fail "xor line %S (use the extended parser)" line
        else line
      in
      String.split_on_char ' ' line
      |> List.concat_map (String.split_on_char '\t')
      |> List.filter (fun t -> t <> "")
      |> List.iter handle_token
    end
  in
  List.iter handle_line (String.split_on_char '\n' s);
  if !current <> [] then fail "clause not terminated by 0";
  let nvars =
    List.fold_left
      (fun acc (vars, _) -> List.fold_left (fun a v -> max a (v + 1)) acc vars)
      !nvars !xors
  in
  (Formula.create ~nvars (List.rev !clauses), List.rev !xors)

let parse_string s = fst (parse_general ~allow_xor:false s)
let parse_string_extended s = parse_general ~allow_xor:true s

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_string (really_input_string ic (in_channel_length ic)))

let write_string f =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" (Formula.nvars f) (Formula.n_clauses f));
  List.iter
    (fun c ->
      List.iter
        (fun l -> Buffer.add_string buf (string_of_int (Lit.to_dimacs l) ^ " "))
        (Clause.to_list c);
      Buffer.add_string buf "0\n")
    (Formula.clauses f);
  Buffer.contents buf

let write_file path f =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (write_string f))

let parse_file_extended path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_string_extended (really_input_string ic (in_channel_length ic)))

let write_string_extended f xors =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (write_string f);
  List.iter
    (fun (vars, parity) ->
      match vars with
      | [] -> ()
      | first :: rest ->
          (* encode the parity in the sign of the first literal *)
          Buffer.add_char buf 'x';
          Buffer.add_string buf
            (string_of_int (if parity then first + 1 else -(first + 1)));
          List.iter (fun v -> Buffer.add_string buf (" " ^ string_of_int (v + 1))) rest;
          Buffer.add_string buf " 0\n")
    xors;
  Buffer.contents buf
