(** Typed lint diagnostics.

    The linter ({!Lint}) returns these instead of printing, so callers
    (CLI, CI, tests) decide severity thresholds and presentation. *)

type severity = Error | Warning | Info

type location =
  | Anf_equation of int  (** index into the ANF system, in list order *)
  | Cnf_clause of int  (** index into [Cnf.Formula.clauses] *)
  | Fact of int  (** index into [Facts.to_list] *)
  | Artifact of string  (** a whole artifact, e.g. ["cnf"] or a file name *)

type t = {
  severity : severity;
  location : location;
  code : string;  (** stable machine-matchable identifier, e.g. ["monomial-order"] *)
  message : string;
}

(** [error loc code fmt ...] formats a diagnostic ({!warning} and {!info}
    likewise). *)
val error : location -> string -> ('a, Format.formatter, unit, t) format4 -> 'a

val warning : location -> string -> ('a, Format.formatter, unit, t) format4 -> 'a
val info : location -> string -> ('a, Format.formatter, unit, t) format4 -> 'a

val is_error : t -> bool
val n_errors : t list -> int
val n_warnings : t list -> int

(** ["severity: location: code: message"] on one line. *)
val pp : Format.formatter -> t -> unit

(** ["E error(s), W warning(s), I info"]. *)
val pp_summary : Format.formatter -> t list -> unit
