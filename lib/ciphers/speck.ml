module P = Anf.Poly
module E = Encode

let width = 16
let full_rounds = 22
let m_words = 4
let alpha = 7 (* right rotation of x *)
let beta = 2 (* left rotation of y *)

(* One Speck round: x = (x >>> alpha) + y) ^ k ; y = (y <<< beta) ^ x.
   The modular addition's carries are defined as fresh variables when
   symbolic; the round outputs are named to keep later rounds quadratic. *)
let round ctx (x, y) k =
  let sum = E.add_word ctx (E.rotr x alpha) y in
  let x' = Array.map (E.define ctx) (E.xor_word sum k) in
  let y' = Array.map (E.define ctx) (E.xor_word (E.rotl y beta) x') in
  (x', y')

(* Key schedule: k0 = key.(0), l0..l2 = key.(1..3);
   l_{i+3} = (k_i + (l_i >>> alpha)) ^ i ; k_{i+1} = (k_i <<< beta) ^ l_{i+3} *)
let expand_key_sym ctx ~rounds key_words =
  let ks = Array.make (max rounds 1) [||] in
  ks.(0) <- key_words.(0);
  let ells = Array.make (rounds + m_words) [||] in
  for i = 0 to m_words - 2 do
    ells.(i) <- key_words.(i + 1)
  done;
  for i = 0 to rounds - 2 do
    let sum = E.add_word ctx (E.rotr ells.(i) alpha) ks.(i) in
    let l_new =
      Array.map (E.define ctx) (E.xor_word sum (E.const_word ~width i))
    in
    ells.(i + m_words - 1) <- l_new;
    ks.(i + 1) <- Array.map (E.define ctx) (E.xor_word (E.rotl ks.(i) beta) l_new)
  done;
  ks

let encrypt_sym ctx ~rounds ~round_keys (x0, y0) =
  let state = ref (x0, y0) in
  for i = 0 to rounds - 1 do
    state := round ctx !state round_keys.(i)
  done;
  !state

let split32 v = (v lsr width land 0xffff, v land 0xffff)
let join32 (x, y) = (x lsl width) lor y

let check_key key =
  if Array.length key <> m_words then invalid_arg "Speck: key must be four 16-bit words";
  Array.iter
    (fun w -> if w < 0 || w > 0xffff then invalid_arg "Speck: key word out of range")
    key

let check_rounds rounds =
  if rounds < 1 || rounds > full_rounds then invalid_arg "Speck: rounds out of range"

let expand_key ~rounds key =
  check_key key;
  check_rounds rounds;
  let ctx = E.create () in
  let words = Array.map (fun w -> E.const_word ~width w) key in
  Array.map
    (fun w -> Option.get (E.word_value w))
    (expand_key_sym ctx ~rounds words)

let encrypt ~rounds ~key plaintext =
  check_key key;
  check_rounds rounds;
  let ctx = E.create () in
  let words = Array.map (fun w -> E.const_word ~width w) key in
  let round_keys = expand_key_sym ctx ~rounds words in
  let xw, yw = split32 plaintext in
  let x, y =
    encrypt_sym ctx ~rounds ~round_keys (E.const_word ~width xw, E.const_word ~width yw)
  in
  join32 (Option.get (E.word_value x), Option.get (E.word_value y))

type instance = {
  equations : P.t list;
  key_vars : int array;
  nvars : int;
  pairs : (int * int) list;
  key : int array;
}

let instance ~rounds ~n_plaintexts ~rng () =
  check_rounds rounds;
  if n_plaintexts < 1 || n_plaintexts > 17 then
    invalid_arg "Speck.instance: 1 <= n_plaintexts <= 17";
  let key = Array.init m_words (fun _ -> Random.State.int rng 0x10000) in
  let p1 =
    (Random.State.int rng 0x10000 lsl width) lor Random.State.int rng 0x10000
  in
  let plaintexts =
    List.init n_plaintexts (fun i -> if i = 0 then p1 else p1 lxor (1 lsl (i - 1)))
  in
  let pairs = List.map (fun p -> (p, encrypt ~rounds ~key p)) plaintexts in
  let ctx = E.create () in
  let key_bits = E.inputs ctx (m_words * width) in
  let key_words =
    Array.init m_words (fun j -> Array.init width (fun i -> key_bits.((j * width) + i)))
  in
  let round_keys = expand_key_sym ctx ~rounds key_words in
  List.iter
    (fun (p, c) ->
      let xw, yw = split32 p in
      let cx, cy = split32 c in
      let x, y =
        encrypt_sym ctx ~rounds ~round_keys (E.const_word ~width xw, E.const_word ~width yw)
      in
      Array.iteri (fun i bit -> E.constrain_bit ctx bit (cx lsr i land 1 = 1)) x;
      Array.iteri (fun i bit -> E.constrain_bit ctx bit (cy lsr i land 1 = 1)) y)
    pairs;
  {
    equations = E.equations ctx;
    key_vars = Array.init (m_words * width) Fun.id;
    nvars = E.nvars ctx;
    pairs;
    key;
  }

let key_assignment inst =
  Array.to_list
    (Array.mapi
       (fun v _ ->
         let word = v / width and bit = v mod width in
         (v, inst.key.(word) lsr bit land 1 = 1))
       inst.key_vars)
