type problem =
  [ `Anf of Anf.Poly.t list
  | `Cnf of Cnf.Formula.t * (int list * bool) list ]

type state = Queued | Running | Done | Failed | Cancelled

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"
  | Cancelled -> "cancelled"

type job = {
  id : int;
  client : string;
  submit : Protocol.submit;
  problem : problem;
  cache_key : string option;
  mutable state : state;
  mutable budget : Harness.Budget.t option;
  mutable cancel_requested : bool;
  mutable summary : Protocol.summary option;
  mutable error : string option;
}

type t = {
  m : Mutex.t;
  work_cv : Condition.t;  (** workers sleep here *)
  done_cv : Condition.t;  (** awaiters sleep here *)
  queues : (string, job Queue.t) Hashtbl.t;
  ring : string Queue.t;
      (** round-robin ring: each client with queued work appears once *)
  in_ring : (string, unit) Hashtbl.t;
  running : (string, int) Hashtbl.t;
  jobs : (int, job) Hashtbl.t;
  mutable next_id : int;
  mutable depth : int;
  mutable n_running : int;
  mutable n_submitted : int;
  mutable n_done : int;
  mutable n_failed : int;
  mutable n_cancelled : int;
  mutable stopping : bool;
}

let create () =
  {
    m = Mutex.create ();
    work_cv = Condition.create ();
    done_cv = Condition.create ();
    queues = Hashtbl.create 16;
    ring = Queue.create ();
    in_ring = Hashtbl.create 16;
    running = Hashtbl.create 16;
    jobs = Hashtbl.create 64;
    next_id = 0;
    depth = 0;
    n_running = 0;
    n_submitted = 0;
    n_done = 0;
    n_failed = 0;
    n_cancelled = 0;
    stopping = false;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let fresh_job t ~client ~cache_key ~problem ~state submit =
  t.next_id <- t.next_id + 1;
  let job =
    {
      id = t.next_id;
      client;
      submit;
      problem;
      cache_key;
      state;
      budget = None;
      cancel_requested = false;
      summary = None;
      error = None;
    }
  in
  Hashtbl.replace t.jobs job.id job;
  t.n_submitted <- t.n_submitted + 1;
  job

let submit t ~client ?cache_key ~problem sub =
  locked t @@ fun () ->
  let job = fresh_job t ~client ~cache_key ~problem ~state:Queued sub in
  let q =
    match Hashtbl.find_opt t.queues client with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace t.queues client q;
        q
  in
  Queue.push job q;
  t.depth <- t.depth + 1;
  if not (Hashtbl.mem t.in_ring client) then begin
    Hashtbl.replace t.in_ring client ();
    Queue.push client t.ring
  end;
  Condition.signal t.work_cv;
  job

let add_completed t ~client ~problem sub summary =
  locked t @@ fun () ->
  let job = fresh_job t ~client ~cache_key:None ~problem ~state:Done sub in
  job.summary <- Some summary;
  t.n_done <- t.n_done + 1;
  job

let find t id = locked t @@ fun () -> Hashtbl.find_opt t.jobs id

(* Pop the next [Queued] job of [client], dropping cancelled ones (their
   terminal bookkeeping happened at cancel time). *)
let rec pop_runnable q =
  match Queue.take_opt q with
  | None -> None
  | Some job when job.state = Queued -> Some job
  | Some _ -> pop_runnable q

let rec next t =
  Mutex.lock t.m;
  let result =
    Fun.protect ~finally:(fun () -> Mutex.unlock t.m) @@ fun () ->
    if t.stopping then `Stop
    else
      match Queue.take_opt t.ring with
      | None ->
          Condition.wait t.work_cv t.m;
          `Retry
      | Some client -> (
          let q = Hashtbl.find t.queues client in
          let job = pop_runnable q in
          if Queue.is_empty q then Hashtbl.remove t.in_ring client
          else Queue.push client t.ring;
          match job with
          | None -> `Retry
          | Some job ->
              job.state <- Running;
              t.depth <- t.depth - 1;
              t.n_running <- t.n_running + 1;
              Hashtbl.replace t.running client
                (1 + Option.value ~default:0 (Hashtbl.find_opt t.running client));
              `Job job)
  in
  match result with `Stop -> None | `Job j -> Some j | `Retry -> next t

let finish t job result =
  locked t @@ fun () ->
  (match result with
  | `Done summary ->
      job.state <- Done;
      job.summary <- Some summary;
      t.n_done <- t.n_done + 1
  | `Failed msg ->
      job.state <- Failed;
      job.error <- Some msg;
      t.n_failed <- t.n_failed + 1);
  t.n_running <- t.n_running - 1;
  (match Hashtbl.find_opt t.running job.client with
  | Some n when n > 1 -> Hashtbl.replace t.running job.client (n - 1)
  | Some _ | None -> Hashtbl.remove t.running job.client);
  Condition.broadcast t.done_cv

let cancel t id =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.jobs id with
  | None -> `Unknown
  | Some job -> (
      match job.state with
      | Queued ->
          job.state <- Cancelled;
          t.depth <- t.depth - 1;
          t.n_cancelled <- t.n_cancelled + 1;
          Condition.broadcast t.done_cv;
          `Cancelled
      | Running ->
          job.cancel_requested <- true;
          (match job.budget with
          | Some b ->
              Harness.Budget.cancel_now b ~layer:"service"
                ~detail:(Printf.sprintf "job %d cancelled by client request" id)
          | None -> ());
          `Cancelling
      | Done | Failed | Cancelled -> `Finished)

let await t job =
  locked t @@ fun () ->
  while job.state = Queued || job.state = Running do
    Condition.wait t.done_cv t.m
  done

let running_of t client =
  locked t @@ fun () ->
  Option.value ~default:0 (Hashtbl.find_opt t.running client)

let queue_depth t = locked t @@ fun () -> t.depth
let running_count t = locked t @@ fun () -> t.n_running

let stats t =
  locked t @@ fun () ->
  [
    ("queue_depth", float_of_int t.depth);
    ("running", float_of_int t.n_running);
    ("submitted", float_of_int t.n_submitted);
    ("done", float_of_int t.n_done);
    ("failed", float_of_int t.n_failed);
    ("cancelled", float_of_int t.n_cancelled);
  ]

let stop t =
  locked t @@ fun () ->
  t.stopping <- true;
  Hashtbl.iter
    (fun _ q ->
      Queue.iter
        (fun job ->
          if job.state = Queued then begin
            job.state <- Cancelled;
            t.depth <- t.depth - 1;
            t.n_cancelled <- t.n_cancelled + 1
          end)
        q)
    t.queues;
  Condition.broadcast t.work_cv;
  Condition.broadcast t.done_cv
