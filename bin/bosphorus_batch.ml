(* bosphorus-batch: run a directory of .anf/.cnf instances through the
   solve daemon with bounded client concurrency, and summarise per-request
   results as CSV/JSON.  Doubles as the load generator for the service
   bench and the CI smoke job: --repeat N replays the directory (warm
   passes hit the daemon's encoding cache), --concurrency K races K
   client connections.  With no --socket it embeds a daemon in-process on
   a temporary socket. *)

type row = {
  file : string;
  client : string;
  status : string;  (* summary status, or "error" *)
  wall_s : float;  (* client-observed round-trip *)
  solver_wall_s : float;
  cache_hit : bool;
  reused_clauses : int;
  trip : string option;
  detail : string;  (* error message when status = "error" *)
}

let is_instance f =
  Filename.check_suffix f ".anf"
  || Filename.check_suffix f ".cnf"
  || Filename.check_suffix f ".dimacs"

let format_of_file f =
  if Filename.check_suffix f ".anf" then Service.Protocol.Anf
  else Service.Protocol.Cnf

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let discover dir =
  match Sys.readdir dir with
  | entries ->
      let files =
        Array.to_list entries |> List.filter is_instance |> List.sort compare
        |> List.map (fun f -> Filename.concat dir f)
      in
      if files = [] then
        Error (`Msg (Printf.sprintf "no .anf/.cnf/.dimacs instances in %s" dir))
      else Ok files
  | exception Sys_error m -> Error (`Msg m)

(* One worker thread: its own connection, drawing from the shared work
   list until empty. *)
let client_thread ~socket ~client_name ~limits ~queue ~queue_m ~rows ~rows_m () =
  let conn = Service.Client.connect socket in
  Fun.protect ~finally:(fun () -> Service.Client.close conn) @@ fun () ->
  let rec loop () =
    let item =
      Mutex.lock queue_m;
      let item =
        match !queue with
        | [] -> None
        | x :: rest ->
            queue := rest;
            Some x
      in
      Mutex.unlock queue_m;
      item
    in
    match item with
    | None -> ()
    | Some (file, text) ->
        let started = Unix.gettimeofday () in
        let reply =
          Service.Client.submit conn ~client:client_name
            ~format:(format_of_file file) ~limits text
        in
        let wall_s = Unix.gettimeofday () -. started in
        let row =
          match reply with
          | Ok (Service.Protocol.Result (_, s)) ->
              {
                file;
                client = client_name;
                status = s.Service.Protocol.status;
                wall_s;
                solver_wall_s = s.Service.Protocol.wall_s;
                cache_hit = s.Service.Protocol.cache_hit;
                reused_clauses = s.Service.Protocol.session_reused_clauses;
                trip =
                  Option.map
                    (fun t -> t.Service.Protocol.trip_kind)
                    s.Service.Protocol.trip;
                detail = "";
              }
          | Ok (Service.Protocol.Error_reply { code; message }) ->
              {
                file;
                client = client_name;
                status = "error";
                wall_s;
                solver_wall_s = 0.0;
                cache_hit = false;
                reused_clauses = 0;
                trip = None;
                detail = code ^ ": " ^ message;
              }
          | Ok _ ->
              {
                file;
                client = client_name;
                status = "error";
                wall_s;
                solver_wall_s = 0.0;
                cache_hit = false;
                reused_clauses = 0;
                trip = None;
                detail = "unexpected reply";
              }
          | Error m ->
              {
                file;
                client = client_name;
                status = "error";
                wall_s;
                solver_wall_s = 0.0;
                cache_hit = false;
                reused_clauses = 0;
                trip = None;
                detail = m;
              }
        in
        Mutex.lock rows_m;
        rows := row :: !rows;
        Mutex.unlock rows_m;
        loop ()
  in
  loop ()

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let write_csv path rows =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
  output_string oc
    "file,client,status,wall_s,solver_wall_s,cache_hit,session_reused_clauses,trip,detail\n";
  List.iter
    (fun r ->
      Printf.fprintf oc "%s,%s,%s,%.6f,%.6f,%b,%d,%s,%s\n" (csv_escape r.file)
        (csv_escape r.client) r.status r.wall_s r.solver_wall_s r.cache_hit
        r.reused_clauses
        (Option.value ~default:"" r.trip)
        (csv_escape r.detail))
    rows

let json_doc ~dir ~concurrency ~repeat ~wall_s ~daemon_stats rows =
  let module V = Harness.Json_out.Value in
  let n = List.length rows in
  let count p = List.length (List.filter p rows) in
  let ok = count (fun r -> r.status <> "error") in
  V.Obj
    [
      ("dir", V.String dir);
      ("concurrency", V.Int concurrency);
      ("repeat", V.Int repeat);
      ("requests", V.Int n);
      ("ok", V.Int ok);
      ("failed", V.Int (n - ok));
      ("degraded", V.Int (count (fun r -> r.status = "degraded")));
      ("cache_hits", V.Int (count (fun r -> r.cache_hit)));
      ("wall_s", V.Float wall_s);
      ( "rps",
        V.Float (if wall_s > 0.0 then float_of_int n /. wall_s else 0.0) );
      ( "daemon_stats",
        V.Obj (List.map (fun (k, v) -> (k, V.Float v)) daemon_stats) );
      ( "results",
        V.List
          (List.map
             (fun r ->
               V.Obj
                 [
                   ("file", V.String r.file);
                   ("client", V.String r.client);
                   ("status", V.String r.status);
                   ("wall_s", V.Float r.wall_s);
                   ("solver_wall_s", V.Float r.solver_wall_s);
                   ("cache_hit", V.Bool r.cache_hit);
                   ("session_reused_clauses", V.Int r.reused_clauses);
                   ( "trip",
                     match r.trip with
                     | None -> V.Null
                     | Some k -> V.String k );
                   ("detail", V.String r.detail);
                 ])
             rows) );
    ]

let run_batch dir socket_opt concurrency repeat shared_client timeout max_mem
    max_conf workers csv_path json_path metrics_path =
  let ( let* ) = Result.bind in
  let concurrency = Int.max 1 concurrency in
  let repeat = Int.max 1 repeat in
  let* files = discover dir in
  let* instances =
    try Ok (List.map (fun f -> (f, read_file f)) files)
    with Sys_error m -> Error (`Msg m)
  in
  Option.iter
    (fun path ->
      Obs.Metrics.set_enabled true;
      Obs.Sink.register ~key:"metrics" ~path (fun oc ->
          output_string oc (Obs.Metrics.to_json ())))
    metrics_path;
  let limits =
    {
      Harness.Budget.timeout_s = timeout;
      max_memory_monomials = max_mem;
      max_total_conflicts = max_conf;
    }
  in
  (* warm passes replay the directory in order, so pass 2+ of an
     unlimited run should land in the daemon's encoding cache *)
  let work = List.concat (List.init repeat (fun _ -> instances)) in
  let embedded, socket =
    match socket_opt with
    | Some s -> (None, s)
    | None ->
        let path =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "bosphorus-batch-%d.sock" (Unix.getpid ()))
        in
        let cfg =
          {
            (Service.Daemon.default_config ~socket_path:path) with
            workers = (if workers > 0 then workers else concurrency);
          }
        in
        (Some (Service.Daemon.start cfg), path)
  in
  let finish_embedded () = Option.iter Service.Daemon.stop embedded in
  Fun.protect ~finally:finish_embedded @@ fun () ->
  let queue = ref work and queue_m = Mutex.create () in
  let rows = ref [] and rows_m = Mutex.create () in
  let started = Unix.gettimeofday () in
  let threads =
    List.init concurrency (fun i ->
        let client_name =
          match shared_client with
          | Some name -> name
          | None -> Printf.sprintf "batch-%d" i
        in
        Thread.create
          (client_thread ~socket ~client_name ~limits ~queue ~queue_m ~rows
             ~rows_m)
          ())
  in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. started in
  let daemon_stats =
    let conn = Service.Client.connect socket in
    Fun.protect
      ~finally:(fun () -> Service.Client.close conn)
      (fun () ->
        match Service.Client.stats conn with Ok kvs -> kvs | Error _ -> [])
  in
  let rows = List.rev !rows in
  let n = List.length rows in
  let failed = List.length (List.filter (fun r -> r.status = "error") rows) in
  let degraded =
    List.length (List.filter (fun r -> r.status = "degraded") rows)
  in
  let hits = List.length (List.filter (fun r -> r.cache_hit) rows) in
  Format.printf
    "batch: %d requests over %d instance(s) x%d, concurrency %d: %d ok, %d \
     degraded, %d failed, %d cache hits in %.3fs (%.1f rps)@."
    n (List.length files) repeat concurrency (n - failed) degraded failed hits
    wall_s
    (if wall_s > 0.0 then float_of_int n /. wall_s else 0.0);
  Option.iter (fun path -> write_csv path rows) csv_path;
  Option.iter
    (fun path ->
      Harness.Json_out.Value.write path
        (json_doc ~dir ~concurrency ~repeat ~wall_s ~daemon_stats rows))
    json_path;
  Option.iter
    (fun path ->
      Obs.Sink.write_now ~key:"metrics";
      Format.printf "metrics: wrote %s@." path)
    metrics_path;
  if failed > 0 then Error (`Msg (Printf.sprintf "%d request(s) failed" failed))
  else Ok ()

open Cmdliner

let dir_arg =
  Arg.(required & pos 0 (some dir) None
       & info [] ~docv:"DIR" ~doc:"Directory of .anf/.cnf/.dimacs instances.")

let socket_arg =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"SOCKET"
           ~doc:"Daemon socket to submit to; without it an in-process \
                 daemon is started on a temporary socket.")

let concurrency_arg =
  Arg.(value & opt int 1
       & info [ "concurrency" ] ~docv:"N"
           ~doc:"Concurrent client connections (each is its own thread).")

let repeat_arg =
  Arg.(value & opt int 1
       & info [ "repeat" ] ~docv:"N"
           ~doc:"Replay the directory N times; warm passes exercise the \
                 encoding cache.")

let client_arg =
  Arg.(value & opt (some string) None
       & info [ "client" ] ~docv:"NAME"
           ~doc:"Submit everything as one client (fair-share tenant); by \
                 default each connection is its own client batch-<i>.")

let timeout_arg =
  Arg.(value & opt (some float) None
       & info [ "timeout" ] ~docv:"SECS" ~doc:"Per-request wall-clock limit.")

let max_mem_arg =
  Arg.(value & opt (some int) None
       & info [ "max-memory-monomials" ] ~docv:"N"
           ~doc:"Per-request memory limit (monomial/clause count).")

let max_conf_arg =
  Arg.(value & opt (some int) None
       & info [ "max-total-conflicts" ] ~docv:"N"
           ~doc:"Per-request cumulative conflict limit.")

let workers_arg =
  Arg.(value & opt int 0
       & info [ "workers" ] ~docv:"N"
           ~doc:"Worker domains of the in-process daemon (default: match \
                 --concurrency); ignored with --socket.")

let csv_arg =
  Arg.(value & opt (some string) None
       & info [ "csv" ] ~docv:"FILE" ~doc:"Write per-request rows as CSV.")

let json_arg =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the batch summary (incl. daemon stats) as JSON.")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write service/solver metrics as JSON (in-process daemon \
                 mode).")

let cmd =
  let doc = "run an instance directory through the solve daemon" in
  let term =
    Term.(
      const run_batch $ dir_arg $ socket_arg $ concurrency_arg $ repeat_arg
      $ client_arg $ timeout_arg $ max_mem_arg $ max_conf_arg $ workers_arg
      $ csv_arg $ json_arg $ metrics_arg)
  in
  Cmd.v (Cmd.info "bosphorus-batch" ~doc) Term.(term_result term)

let () = exit (Cmd.eval cmd)
