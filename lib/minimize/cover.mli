(** Minimum-cover selection over prime implicants.

    Solves the classical covering step of two-level minimisation: pick a
    subset of implicants covering every on-set minterm.  Essential primes
    are taken first; the remainder is solved exactly by branch-and-bound
    when the residual table is small, falling back to the greedy
    most-coverage heuristic (the same spirit as ESPRESSO's irredundant
    cover) otherwise. *)

(** [select ~nvars ~primes ~on_set] returns a sub-list of [primes] covering
    every minterm of [on_set].  Raises [Invalid_argument] if some minterm
    is covered by no prime. *)
val select : nvars:int -> primes:Cube.t list -> on_set:int list -> Cube.t list

(** Threshold (number of residual primes) below which the exact
    branch-and-bound is used. *)
val exact_threshold : int
