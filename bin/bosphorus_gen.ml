(* Instance generator: emits the benchmark families of the paper's
   appendix as .anf / .cnf files, for use with the bosphorus tool or any
   DIMACS solver.

     bosphorus-gen simon --rounds 6 --plaintexts 4 --seed 3 -o simon.anf
     bosphorus-gen aes --sr 1,4,2,4 -o aes.anf
     bosphorus-gen bitcoin --rounds 17 --zero-bits 8 -o btc.anf
     bosphorus-gen speck --rounds 5 --plaintexts 2 -o speck.anf
     bosphorus-gen parity --vertices 40 --unsat -o parity.cnf
     bosphorus-gen ksat --vars 100 --clauses 426 -o hard.cnf *)

open Cmdliner

let rng_of seed = Random.State.make [| seed |]

let write_anf output polys =
  match output with
  | Some path ->
      Anf.Anf_io.write_file path polys;
      Printf.printf "wrote %d equations to %s\n" (List.length polys) path
  | None -> print_string (Anf.Anf_io.write_string polys)

let write_cnf output f =
  match output with
  | Some path ->
      Cnf.Dimacs.write_file path f;
      Printf.printf "wrote %d clauses to %s\n" (Cnf.Formula.n_clauses f) path
  | None -> print_string (Cnf.Dimacs.write_string f)

let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"RNG seed.")

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (stdout if absent).")

let rounds_arg ~default = Arg.(value & opt int default & info [ "rounds" ] ~doc:"Cipher rounds.")

let simon_cmd =
  let plaintexts = Arg.(value & opt int 4 & info [ "plaintexts" ] ~doc:"SP/RC plaintext count.") in
  let run rounds plaintexts seed output =
    let inst = Ciphers.Simon.instance ~rounds ~n_plaintexts:plaintexts ~rng:(rng_of seed) () in
    Printf.printf "c simon32/64 rounds=%d plaintexts=%d key=%04x%04x%04x%04x\n" rounds
      plaintexts inst.Ciphers.Simon.key.(3) inst.Ciphers.Simon.key.(2)
      inst.Ciphers.Simon.key.(1) inst.Ciphers.Simon.key.(0);
    write_anf output inst.Ciphers.Simon.equations
  in
  Cmd.v
    (Cmd.info "simon" ~doc:"round-reduced Simon32/64 key recovery (appendix B)")
    Term.(const run $ rounds_arg ~default:6 $ plaintexts $ seed_arg $ output_arg)

let speck_cmd =
  let plaintexts = Arg.(value & opt int 2 & info [ "plaintexts" ] ~doc:"SP/RC plaintext count.") in
  let run rounds plaintexts seed output =
    let inst = Ciphers.Speck.instance ~rounds ~n_plaintexts:plaintexts ~rng:(rng_of seed) () in
    write_anf output inst.Ciphers.Speck.equations
  in
  Cmd.v
    (Cmd.info "speck" ~doc:"round-reduced Speck32/64 key recovery")
    Term.(const run $ rounds_arg ~default:5 $ plaintexts $ seed_arg $ output_arg)

let aes_cmd =
  let sr =
    Arg.(value & opt string "1,2,2,4"
         & info [ "sr" ] ~docv:"n,r,c,e" ~doc:"Small-scale AES parameters SR(n,r,c,e).")
  in
  let run sr seed output =
    match String.split_on_char ',' sr |> List.map int_of_string_opt with
    | [ Some n; Some r; Some c; Some e ] ->
        let params = { Ciphers.Aes_small.n; r; c; e } in
        let inst = Ciphers.Aes_small.instance params ~rng:(rng_of seed) () in
        write_anf output inst.Ciphers.Aes_small.equations;
        `Ok ()
    | _ -> `Error (false, "expected --sr n,r,c,e (four integers)")
  in
  Cmd.v
    (Cmd.info "aes" ~doc:"small-scale AES SR(n,r,c,e) key recovery (appendix A)")
    Term.(ret (const run $ sr $ seed_arg $ output_arg))

let bitcoin_cmd =
  let k = Arg.(value & opt int 8 & info [ "zero-bits"; "k" ] ~doc:"Required leading zero digest bits.") in
  let run rounds k seed output =
    let inst = Ciphers.Sha256.nonce_instance ~rounds ~k ~rng:(rng_of seed) () in
    write_anf output inst.Ciphers.Sha256.equations
  in
  Cmd.v
    (Cmd.info "bitcoin" ~doc:"weakened Bitcoin nonce finding (appendix C)")
    Term.(const run $ rounds_arg ~default:17 $ k $ seed_arg $ output_arg)

let parity_cmd =
  let vertices = Arg.(value & opt int 40 & info [ "vertices" ] ~doc:"Graph vertices (even).") in
  let unsat = Arg.(value & flag & info [ "unsat" ] ~doc:"Make the instance unsatisfiable.") in
  let run vertices unsat seed output =
    write_cnf output
      (Problems.Generators.parity_chain ~vertices ~satisfiable:(not unsat) ~rng:(rng_of seed))
  in
  Cmd.v
    (Cmd.info "parity" ~doc:"Tseitin parity formula on a random 3-regular graph")
    Term.(const run $ vertices $ unsat $ seed_arg $ output_arg)

let ksat_cmd =
  let vars = Arg.(value & opt int 100 & info [ "vars" ] ~doc:"Variable count.") in
  let clauses = Arg.(value & opt int 426 & info [ "clauses" ] ~doc:"Clause count.") in
  let width = Arg.(value & opt int 3 & info [ "k" ] ~doc:"Clause width.") in
  let run vars clauses width seed output =
    write_cnf output
      (Problems.Generators.random_ksat ~nvars:vars ~n_clauses:clauses ~k:width ~rng:(rng_of seed))
  in
  Cmd.v
    (Cmd.info "ksat" ~doc:"uniform random k-SAT")
    Term.(const run $ vars $ clauses $ width $ seed_arg $ output_arg)

let php_cmd =
  let holes = Arg.(value & opt int 7 & info [ "holes" ] ~doc:"Holes (pigeons = holes+1).") in
  let run holes output = write_cnf output (Problems.Generators.pigeonhole ~holes) in
  Cmd.v (Cmd.info "php" ~doc:"pigeonhole principle (unsatisfiable)")
    Term.(const run $ holes $ output_arg)

let () =
  let doc = "generate Bosphorus benchmark instances" in
  let info = Cmd.info "bosphorus-gen" ~doc in
  exit (Cmd.eval (Cmd.group info [ simon_cmd; speck_cmd; aes_cmd; bitcoin_cmd; parity_cmd; ksat_cmd; php_cmd ]))
