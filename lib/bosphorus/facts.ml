type origin = Propagation | Xl | Elimlin | Sat_solver | Groebner

let origin_name = function
  | Propagation -> "propagation"
  | Xl -> "XL"
  | Elimlin -> "ElimLin"
  | Sat_solver -> "SAT"
  | Groebner -> "Groebner"

(* One counter per fact source, bumped on every successful [add]: the sum
   of the five always equals the total of facts stored this process, which
   is the invariant the traced CI smoke checks against the driver's own
   report. *)
let origin_counter =
  let prop = Obs.Metrics.counter "facts.propagation"
  and xl = Obs.Metrics.counter "facts.xl"
  and elimlin = Obs.Metrics.counter "facts.elimlin"
  and sat = Obs.Metrics.counter "facts.sat"
  and groebner = Obs.Metrics.counter "facts.groebner" in
  function
  | Propagation -> prop
  | Xl -> xl
  | Elimlin -> elimlin
  | Sat_solver -> sat
  | Groebner -> groebner

module Ptbl = Hashtbl.Make (struct
  type t = Anf.Poly.t

  let equal = Anf.Poly.equal
  let hash = Anf.Poly.hash
end)

type t = {
  seen : origin Ptbl.t;
  mutable order : (origin * Anf.Poly.t) list; (* reversed *)
}

let create () = { seen = Ptbl.create 64; order = [] }

let add t origin p =
  if Anf.Poly.is_zero p || Ptbl.mem t.seen p then false
  else begin
    Ptbl.add t.seen p origin;
    t.order <- (origin, p) :: t.order;
    Obs.Metrics.incr (origin_counter origin);
    true
  end

let add_all t origin ps =
  List.fold_left (fun n p -> if add t origin p then n + 1 else n) 0 ps

let mem t p = Ptbl.mem t.seen p
let size t = Ptbl.length t.seen
let to_list t = List.rev t.order

let count_by t origin =
  Ptbl.fold (fun _ o acc -> if o = origin then acc + 1 else acc) t.seen 0

let pp ppf t =
  List.iter
    (fun (o, p) -> Format.fprintf ppf "[%s] %a@." (origin_name o) Anf.Poly.pp p)
    (to_list t)
