(* Performance counters around a measured section: wall clock plus OCaml
   GC allocation (minor/major words).  The SAT bench suites combine these
   with the solver's own counters (propagations, conflicts, arena bytes)
   into propagations/sec and allocation-per-run figures. *)

type counters = {
  wall_s : float;
  minor_words : float;
  major_words : float;
  promoted_words : float;
}

let measure f =
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let x = f () in
  let t1 = Unix.gettimeofday () in
  let g1 = Gc.quick_stat () in
  ( x,
    {
      wall_s = t1 -. t0;
      minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      major_words = g1.Gc.major_words -. g0.Gc.major_words;
      promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
    } )

(* events per second, tolerating a sub-resolution wall time *)
let rate count c = if c.wall_s <= 0.0 then 0.0 else float_of_int count /. c.wall_s

let add a b =
  {
    wall_s = a.wall_s +. b.wall_s;
    minor_words = a.minor_words +. b.minor_words;
    major_words = a.major_words +. b.major_words;
    promoted_words = a.promoted_words +. b.promoted_words;
  }

let zero = { wall_s = 0.0; minor_words = 0.0; major_words = 0.0; promoted_words = 0.0 }

let pp ppf c =
  Format.fprintf ppf "wall=%.4fs minor=%.0fw major=%.0fw promoted=%.0fw" c.wall_s
    c.minor_words c.major_words c.promoted_words

(* Flatten counters into bench-record extras (optionally namespaced with
   [prefix]) so every JSON bench record can carry its GC words per phase
   next to the solver counters. *)
let to_extras ?(prefix = "") c =
  [
    (prefix ^ "gc_minor_words", c.minor_words);
    (prefix ^ "gc_major_words", c.major_words);
    (prefix ^ "gc_promoted_words", c.promoted_words);
  ]
