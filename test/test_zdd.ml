(* Tests for the ZDD-backed polynomial representation (PolyBoRi's data
   structure), cross-checked against the expanded Poly representation. *)

module P = Anf.Poly
module Z = Anf.Zdd

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let poly = Anf.Anf_io.poly_of_string

let test_terminals () =
  let m = Z.create_manager () in
  check "zero" true (Z.is_zero Z.zero);
  check "one" true (Z.is_one Z.one);
  check "0 roundtrip" true (P.is_zero (Z.to_poly m Z.zero));
  check "1 roundtrip" true (P.is_one (Z.to_poly m Z.one));
  check_int "terms of zero" 0 (Z.n_terms m Z.zero);
  check_int "terms of one" 1 (Z.n_terms m Z.one)

let test_roundtrip () =
  let m = Z.create_manager () in
  List.iter
    (fun s ->
      let p = poly s in
      check s true (P.equal p (Z.to_poly m (Z.of_poly m p))))
    [ "0"; "1"; "x0"; "x3 + 1"; "x0*x1 + x2 + 1"; "x1*x2*x3 + x1 + x3" ]

let test_hash_consing_equality () =
  let m = Z.create_manager () in
  let a = Z.of_poly m (poly "x0*x1 + x2") in
  let b = Z.add m (Z.of_poly m (poly "x0*x1")) (Z.of_poly m (poly "x2")) in
  check "same structure, same id" true (Z.equal a b)

let test_add_cancellation () =
  let m = Z.create_manager () in
  let a = Z.of_poly m (poly "x0*x1 + x2") in
  check "f + f = 0" true (Z.is_zero (Z.add m a a))

let test_mul_idempotent () =
  let m = Z.create_manager () in
  let a = Z.of_poly m (poly "x0 + x1 + 1") in
  check "f * f = f" true (Z.equal a (Z.mul m a a))

let test_sharing_compactness () =
  (* (x0+1)(x1+1)...(x(k-1)+1) has 2^k monomials but only k nonterminal
     nodes - the memory argument of PolyBoRi *)
  let m = Z.create_manager () in
  let k = 16 in
  let product = ref Z.one in
  for i = 0 to k - 1 do
    product := Z.mul m !product (Z.add m (Z.var m i) Z.one)
  done;
  check_int "2^16 monomials" (1 lsl k) (Z.n_terms m !product);
  check "linear node count" true (Z.node_count m !product <= k);
  (* the expanded Poly representation would need 65536 monomials *)
  check "manager stayed small" true (Z.manager_size m < 4096)

let test_subst () =
  let m = Z.create_manager () in
  (* paper II-C: substituting x1 := x2 + x3 in x1x2 + x2x3 + 1 gives x2+1 *)
  let f = Z.of_poly m (poly "x1*x2 + x2*x3 + 1") in
  let by = Z.of_poly m (poly "x2 + x3") in
  let r = Z.subst m f ~target:1 ~by in
  Alcotest.(check string) "subst" "x2 + 1" (P.to_string (Z.to_poly m r));
  (* substitution introducing a smaller variable (ordering stress) *)
  let g = Z.of_poly m (poly "x5*x6 + x6") in
  let r2 = Z.subst m g ~target:6 ~by:(Z.of_poly m (poly "x0 + 1")) in
  check "smaller-var substitution" true
    (P.equal (Z.to_poly m r2) (P.subst (poly "x5*x6 + x6") ~target:6 ~by:(poly "x0 + 1")))

let mono_gen = QCheck.Gen.(map Anf.Monomial.of_vars (list_size (int_bound 4) (int_bound 7)))
let poly_gen = QCheck.Gen.(map P.of_monomials (list_size (int_bound 8) mono_gen))
let arb_poly = QCheck.make ~print:P.to_string poly_gen

let prop_zdd_add_matches_poly =
  QCheck.Test.make ~name:"zdd add = poly add" ~count:300 QCheck.(pair arb_poly arb_poly)
    (fun (a, b) ->
      let m = Z.create_manager () in
      P.equal (P.add a b) (Z.to_poly m (Z.add m (Z.of_poly m a) (Z.of_poly m b))))

let prop_zdd_mul_matches_poly =
  QCheck.Test.make ~name:"zdd mul = poly mul" ~count:300 QCheck.(pair arb_poly arb_poly)
    (fun (a, b) ->
      let m = Z.create_manager () in
      P.equal (P.mul a b) (Z.to_poly m (Z.mul m (Z.of_poly m a) (Z.of_poly m b))))

let prop_zdd_subst_matches_poly =
  QCheck.Test.make ~name:"zdd subst = poly subst" ~count:300
    QCheck.(pair arb_poly arb_poly)
    (fun (p, by) ->
      let m = Z.create_manager () in
      let target = 3 in
      P.equal
        (P.subst p ~target ~by)
        (Z.to_poly m (Z.subst m (Z.of_poly m p) ~target ~by:(Z.of_poly m by))))

let prop_zdd_terms_match =
  QCheck.Test.make ~name:"zdd n_terms = poly n_terms" ~count:300 arb_poly (fun p ->
      let m = Z.create_manager () in
      Z.n_terms m (Z.of_poly m p) = P.n_terms p)

let suite =
  [
    ( "anf.zdd",
      [
        Alcotest.test_case "terminals" `Quick test_terminals;
        Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        Alcotest.test_case "hash-consing equality" `Quick test_hash_consing_equality;
        Alcotest.test_case "GF(2) cancellation" `Quick test_add_cancellation;
        Alcotest.test_case "Boolean-ring idempotence" `Quick test_mul_idempotent;
        Alcotest.test_case "sharing compactness (2^16 terms)" `Quick test_sharing_compactness;
        Alcotest.test_case "substitution" `Quick test_subst;
        QCheck_alcotest.to_alcotest prop_zdd_add_matches_poly;
        QCheck_alcotest.to_alcotest prop_zdd_mul_matches_poly;
        QCheck_alcotest.to_alcotest prop_zdd_subst_matches_poly;
        QCheck_alcotest.to_alcotest prop_zdd_terms_match;
      ] );
  ]
