module P = Anf.Poly
module M = Anf.Monomial

type report = {
  facts : P.t list;
  basis_size : int;
  pairs_processed : int;
  pairs_skipped : int;
  contradiction : bool;
}

let lcm_monomial a b = M.mul a b (* idempotent product = variable-set union *)

(* One reduction step of the leading monomial [m] of [p] by [g]: p + u*g
   with u = m / lt(g).  In the Boolean ring the cofactor product can cancel
   the very term it should eliminate (x1x2 + x2 times x1 is 0), so the step
   reports failure unless the leading monomial strictly decreased. *)
let reduce_leading_by p g =
  let m = P.leading p in
  let ltg = P.leading g in
  if not (M.divides ltg m) then None
  else
    let u = M.of_vars (List.filter (fun x -> not (M.contains ltg x)) (M.vars m)) in
    let q = P.add p (P.mul_monomial g u) in
    if P.is_zero q then Some q
    else if M.compare (P.leading q) m > 0 then Some q
    else None

(* Full normal form: repeatedly eliminate the leading monomial; when it is
   irreducible, move it to the result and continue with the tail. *)
let reduce p basis =
  let rec go work acc_monomials =
    if P.is_zero work then P.of_monomials acc_monomials
    else
      let m = P.leading work in
      let rec try_basis = function
        | [] -> None
        | g :: rest -> (
            match reduce_leading_by work g with
            | Some q -> Some q
            | None -> try_basis rest)
      in
      match try_basis basis with
      | Some q -> go q acc_monomials
      | None ->
          (* m is irreducible: strip it and keep going *)
          go (P.add work (P.of_monomials [ m ])) (m :: acc_monomials)
  in
  go p []

type pair =
  | Spair of P.t * P.t
  | Var_mult of int * P.t
      (* the Boolean-ring analogue of the S-pair with a field polynomial
         xi^2 + xi: consider xi * f for xi in the leading monomial *)

let pair_degree = function
  | Spair (f, g) -> M.degree (lcm_monomial (P.leading f) (P.leading g))
  | Var_mult (_, f) -> P.degree f

let spoly f g =
  let lf = P.leading f and lg = P.leading g in
  let lcm = lcm_monomial lf lg in
  let cof l = M.of_vars (List.filter (fun x -> not (M.contains l x)) (M.vars lcm)) in
  P.add (P.mul_monomial f (cof lf)) (P.mul_monomial g (cof lg))

let run ?(max_degree = 3) ?(max_basis = 512) ?(max_pairs = 4096) polys =
  let processed = ref 0 and skipped = ref 0 in
  let contradiction = ref false in
  let basis = ref [] in
  let pairs = ref [] in
  let coprime a b = not (List.exists (fun x -> M.contains b x) (M.vars a)) in
  let push_pairs f =
    List.iter
      (fun g ->
        (* product criterion (a heuristic here: skipping pairs only costs
           completeness, never soundness) *)
        if not (coprime (P.leading f) (P.leading g)) then
          pairs := Spair (f, g) :: !pairs
        else incr skipped)
      !basis;
    List.iter (fun x -> pairs := Var_mult (x, f) :: !pairs) (M.vars (P.leading f))
  in
  let add_to_basis r =
    if P.is_one r then contradiction := true
    else begin
      push_pairs r;
      basis := r :: !basis
    end
  in
  (* seed: inter-reduce the inputs *)
  List.iter
    (fun p ->
      let r = reduce p !basis in
      if not (P.is_zero r) then add_to_basis r)
    (List.sort_uniq P.compare polys);
  let pop_min () =
    match !pairs with
    | [] -> None
    | first :: _ ->
        let best =
          List.fold_left
            (fun best p -> if pair_degree p < pair_degree best then p else best)
            first !pairs
        in
        pairs := List.filter (fun p -> p != best) !pairs;
        Some best
  in
  let continue_ () =
    (not !contradiction)
    && !pairs <> []
    && !processed < max_pairs
    && List.length !basis < max_basis
  in
  while continue_ () do
    match pop_min () with
    | None -> ()
    | Some pair ->
        if pair_degree pair > max_degree then incr skipped
        else begin
          incr processed;
          let candidate =
            match pair with
            | Spair (f, g) -> spoly f g
            | Var_mult (x, f) -> P.mul_monomial f (M.var x)
          in
          let r = reduce candidate !basis in
          if not (P.is_zero r) then add_to_basis r
        end
  done;
  {
    facts =
      (if !contradiction then [ P.one ] else []) @ Xl.retain_facts !basis;
    basis_size = List.length !basis;
    pairs_processed = !processed;
    pairs_skipped = !skipped;
    contradiction = !contradiction;
  }
