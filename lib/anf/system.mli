(** A mutable system of Boolean polynomial equations with occurrence lists.

    This is the "master copy" data structure of Section III-B: a list of
    polynomials plus, for each variable, the list of polynomials it occurs
    in, so that propagation touches only the equations a variable appears in.
    Polynomials are identified by stable integer ids; removing one leaves a
    tombstone, so ids stay valid.  Duplicate polynomials are refused by
    {!add}, keeping the system a set. *)

type t

(** A stable handle on a polynomial inside a system. *)
type id = int

(** [create polys] builds a system from initial polynomials (duplicates and
    zero polynomials are dropped). *)
val create : Poly.t list -> t

(** [copy t] is an independent deep copy. *)
val copy : t -> t

(** Number of live (non-removed, non-zero) polynomials. *)
val size : t -> int

(** One more than the largest variable index mentioned, or 0. *)
val nvars : t -> int

(** [fresh_var t] allocates a variable index unused by the system so far
    (monotonically increasing across calls). *)
val fresh_var : t -> int

(** [add t p] inserts [p] unless it is zero or already present; returns the
    id if inserted. *)
val add : t -> Poly.t -> id option

(** [mem t p] is [true] iff an equal polynomial is live in [t]. *)
val mem : t -> Poly.t -> bool

(** [remove t id] deletes the polynomial with this id (no-op if already
    removed). *)
val remove : t -> id -> unit

(** [replace t id p] removes [id] and inserts [p] (unless zero/duplicate),
    returning the new id if inserted. *)
val replace : t -> id -> Poly.t -> id option

(** [find t id] is the live polynomial with this id, if any. *)
val find : t -> id -> Poly.t option

(** [occurrences t x] lists ids of live polynomials containing variable [x]. *)
val occurrences : t -> int -> id list

(** [occurrence_count t x] is [List.length (occurrences t x)] in O(1): the
    count is maintained incrementally so variable-selection heuristics
    (ElimLin's least-occurring-variable rule) need not materialise the
    occurrence list per candidate. *)
val occurrence_count : t -> int -> int

(** [iter t f] applies [f id poly] to every live polynomial. *)
val iter : t -> (id -> Poly.t -> unit) -> unit

(** Live polynomials in ascending id order. *)
val to_list : t -> Poly.t list

(** [has_contradiction t] is [true] iff the polynomial 1 (i.e. 1 = 0) is in
    the system. *)
val has_contradiction : t -> bool

val pp : Format.formatter -> t -> unit
