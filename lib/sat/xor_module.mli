(** XOR-constraint recovery and Gaussian elimination over recovered XORs —
    the feature that distinguishes the CryptoMiniSat-style solver profile
    (the paper's Section I notes CryptoMiniSat5 "natively performs
    Gauss-Jordan elimination").

    A CNF encodes the constraint [x1 ⊕ ... ⊕ xk = parity] as the
    [2^(k-1)] clauses forbidding every assignment of the wrong parity;
    {!recover} detects complete such families, and {!gauss} row-reduces the
    recovered system to expose implied units, equivalences and
    inconsistency. *)

type xor = { vars : int list; parity : bool }
(** [x1 ⊕ ... ⊕ xn = parity]; [vars] sorted, distinct, non-empty. *)

val make_xor : vars:int list -> parity:bool -> xor
(** Normalises: duplicated variables cancel.  Raises [Invalid_argument] if
    the variable list normalises to empty with [parity = false] being
    trivial — an empty-var XOR with parity [true] is represented and means
    inconsistency downstream. *)

val pp_xor : Format.formatter -> xor -> unit

(** [recover ?max_arity f] finds all XOR constraints of arity
    [2..max_arity] (default 5) whose full clause encoding appears in [f]. *)
val recover : ?max_arity:int -> Cnf.Formula.t -> xor list

(** [gauss ~nvars xors] Gauss–Jordan-eliminates the XOR system.  Returns
    [`Unsat] on an inconsistent row (the learnt fact 1 = 0), otherwise
    [`Reduced rows] in reduced row echelon form. *)
val gauss : nvars:int -> xor list -> [ `Unsat | `Reduced of xor list ]

(** [clauses_of_xor x] is the CNF encoding of [x]: [2^(k-1)] clauses. *)
val clauses_of_xor : xor -> Cnf.Clause.t list

(** [derived_facts ~nvars xors] runs {!gauss} and returns the unit and
    binary XOR rows of the reduced system as CNF clauses — the cheap,
    always-profitable facts to hand a CDCL solver. *)
val derived_facts : nvars:int -> xor list -> [ `Unsat | `Clauses of Cnf.Clause.t list ]
